#include "eval/driver_campaign.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "hw/flight_recorder.h"
#include "hw/io_bus.h"
#include "minic/bytecode/patcher.h"
#include "minic/lexer.h"
#include "minic/program.h"
#include "mutation/c_mutator.h"
#include "support/line_bitmap.h"
#include "support/metrics.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"

namespace eval {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompileTime: return "Compile-time check";
    case Outcome::kRunTime: return "Run-time check";
    case Outcome::kDeadCode: return "Dead code";
    case Outcome::kBoot: return "Boot";
    case Outcome::kCrash: return "Crash";
    case Outcome::kInfiniteLoop: return "Infinite loop";
    case Outcome::kHalt: return "Halt";
    case Outcome::kDamagedBoot: return "Damaged boot";
  }
  return "?";
}

void map_bound_device(hw::IoBus& bus, const DeviceBinding& binding,
                      std::shared_ptr<hw::Device> dev) {
  bus.map(binding.port_base, binding.port_span, std::move(dev),
          binding.irq_line);
  if (binding.irq_line >= 0) {
    bus.map(hw::kIrqStatusPortBase, 1,
            std::make_shared<hw::IrqStatusPort>(&bus.irq_controller()));
  }
}

const char* outcome_short(Outcome o) {
  switch (o) {
    case Outcome::kCompileTime: return "compile";
    case Outcome::kRunTime: return "runtime";
    case Outcome::kDeadCode: return "dead";
    case Outcome::kBoot: return "boot";
    case Outcome::kCrash: return "crash";
    case Outcome::kInfiniteLoop: return "loop";
    case Outcome::kHalt: return "halt";
    case Outcome::kDamagedBoot: return "damaged";
  }
  return "?";
}

namespace {

Outcome classify_fault(minic::FaultKind kind) {
  switch (kind) {
    case minic::FaultKind::kDevilAssertion:
      return Outcome::kRunTime;
    case minic::FaultKind::kPanic:
      return Outcome::kHalt;
    case minic::FaultKind::kStepLimit:
      return Outcome::kInfiniteLoop;
    case minic::FaultKind::kWatchdog:
      // Wall-clock containment of a wedged boot: same bucket as the step
      // budget, but counted separately (the trip is host-speed dependent).
      support::Metrics::add_watchdog_trip();
      return Outcome::kInfiniteLoop;
    case minic::FaultKind::kBusFault:
    case minic::FaultKind::kDivByZero:
    case minic::FaultKind::kBadIndex:
    case minic::FaultKind::kStackOverflow:
      return Outcome::kCrash;
    case minic::FaultKind::kNone:
    case minic::FaultKind::kInternal:
      break;
  }
  throw std::logic_error("unclassifiable fault kind");
}

/// Byte range one clean-stream token's serialization occupies inside the
/// precomputed canonical key, plus the token's (prefix-offset) line — enough
/// to splice a replacement token's serialization in without re-lexing.
struct KeySpan {
  size_t begin = 0;
  size_t end = 0;
  uint32_t line = 0;
};

/// Everything invariant across mutants, computed once per campaign and
/// shared read-only by all workers (the device pool is internally locked).
struct PreparedCampaign {
  const DriverCampaignConfig* config = nullptr;
  std::string entry;             // resolved: config override or binding default
  minic::PreparedPrefix prefix;  // stubs lexed once
  std::vector<mutation::Site> sites;
  std::vector<mutation::Mutant> mutants;
  int64_t clean_fingerprint = 0;
  /// Clean-tail recording compile + the patcher built from it. `patcher` is
  /// null when patching is off, the engine is not the cached VM, or the
  /// clean tail needed the whole-unit fallback — then every mutant
  /// recompiles, exactly as before this layer existed.
  minic::RecordedTail recorded;
  std::unique_ptr<minic::bytecode::Patcher> patcher;
  /// Canonical dedup key of the CLEAN tail and, for every site whose token
  /// appears exactly once in the clean stream (and never via macro
  /// expansion), the key bytes that token owns. Mutants at such sites get
  /// their key by three-way splice instead of a full re-lex.
  std::string clean_key;
  std::unordered_map<uint32_t, KeySpan> key_spans;
  mutable hw::DevicePool device_pool;
};

/// The site-independent residue of one compile+boot, kept only for mutants
/// that canonical duplicates will be classified from.
struct BootSnapshot {
  bool clean = false;       // booted without fault, disk intact, right view
  Outcome outcome = Outcome::kCompileTime;  // valid when !clean
  std::string detail;
  uint64_t steps = 0;
  std::string trace;        // flight-recorder post-mortem (non-clean only)
  support::LineBitmap executed;
  std::map<std::string, std::set<uint32_t>> macro_use_lines;
};

/// Dead-code vs boot classification for a cleanly booting mutant: executed
/// iff the mutated token's line ran (for a site inside a #define body, iff
/// any use of that macro sits on an executed line).
Outcome classify_clean(const PreparedCampaign& prep, const mutation::Site& site,
                       const support::LineBitmap& executed,
                       const std::map<std::string, std::set<uint32_t>>&
                           macro_use_lines) {
  bool ran;
  if (!site.define_name.empty()) {
    ran = false;
    auto uses = macro_use_lines.find(site.define_name);
    if (uses != macro_use_lines.end()) {
      for (uint32_t use_line : uses->second) {
        if (executed.test(use_line)) {
          ran = true;
          break;
        }
      }
    }
  } else {
    ran = executed.test(site.line + prep.prefix.lines);
  }
  return ran ? Outcome::kBoot : Outcome::kDeadCode;
}

/// True when this campaign compiles mutants through the compiled-prefix
/// cache (tail-only front end + segment splice) instead of whole units.
bool uses_prefix_cache(const PreparedCampaign& prep) {
  return prep.config->prefix_cache &&
         prep.config->engine == minic::ExecEngine::kBytecodeVm &&
         prep.prefix.compiled != nullptr;
}

/// True when the tree-walker oracle runs layered over the prefix cache
/// (tail-only front end + `run_tail_unit`) instead of whole units.
/// Observationally identical either way (ctest-enforced); these boots do
/// NOT count as `prefix_cache_hits`, which keeps its bytecode-splice
/// meaning.
bool walker_uses_prefix(const PreparedCampaign& prep) {
  return prep.config->prefix_cache &&
         prep.config->engine == minic::ExecEngine::kTreeWalker &&
         prep.prefix.compiled != nullptr;
}

/// Appends one token's canonical-key serialization: kind byte, raw line,
/// then the value/spelling for the kinds where it matters. Shared by the
/// slow (full re-lex) and fast (clean-key splice) key paths — they MUST
/// serialize identically byte for byte.
void append_token_key(std::string& key, const minic::Token& t) {
  key.push_back(static_cast<char>(t.kind));
  key.append(reinterpret_cast<const char*>(&t.loc.line), sizeof(t.loc.line));
  if (t.kind == minic::Tok::kIntLit) {
    uint64_t v = t.int_value;
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  } else if (t.kind == minic::Tok::kIdent ||
             t.kind == minic::Tok::kStringLit) {
    key.append(t.text);
    key.push_back('\0');
  }
}

/// Appends the macro-use-lines section of a canonical key (the '|' sentinel
/// plus each macro's name and sorted use lines).
void append_macro_lines(
    std::string& key,
    const std::map<std::string, std::set<uint32_t>>& macro_use_lines) {
  key.push_back('|');
  for (const auto& [name, lines] : macro_use_lines) {
    key.append(name);
    key.push_back('\0');
    for (uint32_t line : lines) {
      key.append(reinterpret_cast<const char*>(&line), sizeof(line));
    }
    key.push_back('\0');
  }
}

/// Lexes `text` standalone (no seed macros) and returns its single token iff
/// it lexes cleanly to exactly one non-expanded token. This is how both the
/// patcher request derivation and the fast key path model "the mutant's
/// stream is the clean stream with one token swapped".
std::optional<minic::Token> lex_single_token(const std::string& text) {
  support::DiagnosticEngine diags;
  support::SourceBuffer buf("replacement", text);
  minic::LexOutput lexed = minic::lex_unit(buf, diags, {});
  if (diags.has_errors()) return std::nullopt;
  if (lexed.tokens.size() != 2) return std::nullopt;  // token + kEof
  const minic::Token& t = lexed.tokens.front();
  if (t.from_expansion) return std::nullopt;
  return t;
}

/// True when `a` directly followed by `b` could lex as one token (or a
/// different operator) instead of two: both identifier/number characters, or
/// both operator characters. Conservative — false positives only cost a
/// recompile / slow key.
bool may_merge(char a, char b) {
  auto word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  if (word(a) && word(b)) return true;
  constexpr const char* kOps = "&|<>=+-!~^*/%";
  return std::strchr(kOps, a) != nullptr && std::strchr(kOps, b) != nullptr;
}

/// True when splicing `replacement` over `site` could merge with the
/// adjacent driver bytes into different tokens than "clean stream with one
/// token swapped" — then neither the patcher nor the fast key may model the
/// mutant token-locally.
bool splice_may_merge(const std::string& driver, const mutation::Site& site,
                      const std::string& replacement) {
  if (replacement.empty()) return true;
  if (site.offset > 0 &&
      may_merge(driver[site.offset - 1], replacement.front())) {
    return true;
  }
  size_t after = site.offset + site.length;
  if (after < driver.size() &&
      may_merge(replacement.back(), driver[after])) {
    return true;
  }
  return false;
}

/// Binary-operator precedence, mirroring the MiniC parser's table exactly.
/// -1 for anything that is not a binary operator.
int binop_precedence(minic::Tok t) {
  using minic::Tok;
  switch (t) {
    case Tok::kStar: case Tok::kSlash: case Tok::kPercent: return 10;
    case Tok::kPlus: case Tok::kMinus: return 9;
    case Tok::kShl: case Tok::kShr: return 8;
    case Tok::kLt: case Tok::kGt: case Tok::kLe: case Tok::kGe: return 7;
    case Tok::kEq: case Tok::kNe: return 6;
    case Tok::kAmp: return 5;
    case Tok::kCaret: return 4;
    case Tok::kPipe: return 3;
    case Tok::kAmpAmp: return 2;
    case Tok::kPipePipe: return 1;
    default: return -1;
  }
}

bool is_assign_tok(minic::Tok t) {
  using minic::Tok;
  switch (t) {
    case Tok::kAssign: case Tok::kPlusAssign: case Tok::kMinusAssign:
    case Tok::kAndAssign: case Tok::kOrAssign: case Tok::kXorAssign:
    case Tok::kShlAssign: case Tok::kShrAssign:
      return true;
    default:
      return false;
  }
}

/// Grouping class of an operator token for the precedence-safety check:
/// the parser's binary precedence (>= 0), one shared level for all
/// (right-associative) assignment operators, one for the unary-only
/// spellings, and "unknown" for everything else. Swaps within one class
/// never re-associate; swaps across classes are never provably safe.
enum { kClassAssign = -2, kClassUnary = -3, kClassUnknown = -4 };
int grouping_class(minic::Tok t) {
  int p = binop_precedence(t);
  if (p >= 0) return p;
  if (is_assign_tok(t)) return kClassAssign;
  if (t == minic::Tok::kTilde || t == minic::Tok::kBang) return kClassUnary;
  return kClassUnknown;
}

/// True when swapping the operator token at `index` (binary precedence
/// `p_old`) for one of precedence `p_new` provably re-parses to the same
/// tree: no operator token at the same parenthesis/bracket level of the
/// enclosing expression has a precedence in [min, max] — any such
/// neighbour could group differently against the new operator (the swapped
/// token would then bind a different operand than an in-place opcode
/// rewrite preserves). Conservative: treats unary +/- spellings as binary
/// and never scans past an expression boundary.
bool precedence_swap_safe(const std::vector<minic::Token>& tokens,
                          size_t index, int p_old, int p_new) {
  using minic::Tok;
  const int lo = std::min(p_old, p_new);
  const int hi = std::max(p_old, p_new);
  auto boundary = [](Tok k) {
    switch (k) {
      case Tok::kSemi: case Tok::kComma: case Tok::kLBrace:
      case Tok::kRBrace: case Tok::kQuestion: case Tok::kColon:
      case Tok::kEof:
        return true;
      default:
        return is_assign_tok(k);
    }
  };
  int depth = 0;
  for (size_t i = index; i-- > 0;) {
    Tok k = tokens[i].kind;
    if (k == Tok::kRParen || k == Tok::kRBracket) { ++depth; continue; }
    if (k == Tok::kLParen || k == Tok::kLBracket) {
      if (depth == 0) break;  // left the enclosing parenthesis level
      --depth;
      continue;
    }
    if (depth > 0) continue;
    if (boundary(k)) break;
    int p = binop_precedence(k);
    if (p >= lo && p <= hi) return false;
  }
  depth = 0;
  for (size_t i = index + 1; i < tokens.size(); ++i) {
    Tok k = tokens[i].kind;
    if (k == Tok::kLParen || k == Tok::kLBracket) { ++depth; continue; }
    if (k == Tok::kRParen || k == Tok::kRBracket) {
      if (depth == 0) break;
      --depth;
      continue;
    }
    if (depth > 0) continue;
    if (boundary(k)) break;
    int p = binop_precedence(k);
    if (p >= lo && p <= hi) return false;
  }
  return true;
}

/// Operator-swap half of the classification: the replacement must keep the
/// clean parse tree. Same grouping class (equal binary precedence, or the
/// one assignment / unary-prefix level) always does; a cross-precedence
/// binary swap only when every tagged occurrence of the site passes the
/// neighbour scan above. A site whose token never appears in the clean
/// stream (lowered away, or a macro shape that drops tags) is unverifiable
/// and falls back.
bool operator_swap_keeps_tree(const PreparedCampaign& prep, uint32_t site_id,
                              minic::Tok new_op) {
  const std::vector<minic::Token>& tokens = prep.recorded.tokens;
  size_t occurrences = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].site != site_id) continue;
    ++occurrences;
    const int c_old = grouping_class(tokens[i].kind);
    const int c_new = grouping_class(new_op);
    if (c_old == kClassUnknown || c_new == kClassUnknown) return false;
    if (c_old == c_new) continue;
    if (c_old < 0 || c_new < 0) return false;  // across operator shapes
    if (!precedence_swap_safe(tokens, i, c_old, c_new)) return false;
  }
  return occurrences > 0;
}

/// Maps one mutant onto a bytecode patch request, or nullopt when the
/// mutant is not token-local (multi-token replacement, possible token
/// merges, macro-involved renames, O-typo literals, tree-reshaping
/// precedence changes). `prep.patcher` must be non-null. Returning a
/// request does not yet mean the patch applies — the patcher still
/// classifies the lowered patch points.
std::optional<minic::bytecode::PatchRequest> derive_patch_request(
    const PreparedCampaign& prep, const mutation::Mutant& m) {
  const mutation::Site& site = prep.sites[m.site];
  if (splice_may_merge(prep.config->driver, site, m.replacement)) {
    return std::nullopt;
  }
  auto tok = lex_single_token(m.replacement);
  if (!tok) return std::nullopt;

  minic::bytecode::PatchRequest req;
  req.site = static_cast<uint32_t>(m.site);
  switch (site.kind) {
    case mutation::SiteKind::kOperator:
      // A replacement that lexes to an identifier/literal is not an
      // operator swap (defensive; Table 1 never generates one).
      if (tok->kind == minic::Tok::kIdent ||
          tok->kind == minic::Tok::kIntLit ||
          tok->kind == minic::Tok::kStringLit) {
        return std::nullopt;
      }
      // An operator of a different precedence level can re-associate the
      // parse tree (`a | b & c` groups differently than `a | b | c` did);
      // an in-place opcode rewrite preserves the clean tree, so such swaps
      // must recompile unless no neighbour operator can regroup.
      if (!operator_swap_keeps_tree(prep, req.site, tok->kind)) {
        return std::nullopt;
      }
      req.kind = minic::bytecode::PatchRequest::Kind::kOperator;
      req.new_op = tok->kind;
      return req;
    case mutation::SiteKind::kLiteral:
      // O-typos ("Ox1f0") lex to identifiers: structure-changing, fall back.
      if (tok->kind != minic::Tok::kIntLit) return std::nullopt;
      req.kind = minic::bytecode::PatchRequest::Kind::kLiteral;
      req.value = tok->int_value;
      return req;
    case mutation::SiteKind::kIdentifier: {
      if (tok->kind != minic::Tok::kIdent) return std::nullopt;
      // Macro-involved renames change the expanded token stream and move
      // macro-use lines (which snapshots and dedup classification read), so
      // they always recompile. This also keeps the `patched` bit a pure
      // function of the mutant — shard-merge and thread-count invariant.
      if (prep.patcher->is_macro(site.original) ||
          prep.patcher->is_macro(m.replacement)) {
        return std::nullopt;
      }
      req.kind = minic::bytecode::PatchRequest::Kind::kIdentifier;
      req.original = site.original;
      req.replacement = m.replacement;
      return req;
    }
  }
  return std::nullopt;
}

/// The pure per-mutant kernel: splice, compile (tail-only against the
/// cached compiled prefix on the VM engine, whole-unit token splice
/// otherwise), boot, classify. Touches nothing but its own locals and the
/// read-only `prep` (plus the locked disk pool), so any number of these can
/// run concurrently. When `snap` is non-null the site-independent boot
/// residue is captured for duplicate classification.
MutantRecord run_one_mutant(const PreparedCampaign& prep, size_t mutant_ix,
                            BootSnapshot* snap, std::string pre_spliced = {},
                            uint8_t* cache_hit = nullptr) {
  const DriverCampaignConfig& config = *prep.config;
  const mutation::Mutant& m = prep.mutants[mutant_ix];
  const mutation::Site& site = prep.sites[m.site];

  MutantRecord rec;
  rec.mutant_index = mutant_ix;
  rec.site = m.site;

  // --- patch path: token-local mutants skip the front end entirely --------
  std::optional<minic::bytecode::Module> patched;
  if (prep.patcher != nullptr) {
    auto req = derive_patch_request(prep, m);
    if (req) {
      support::StageTimer patch_timer(support::Stage::kPatch);
      patched = prep.patcher->apply(*req);
    }
    if (patched) {
      rec.patched = true;
    } else {
      rec.patch_fallback = true;
    }
  }

  const bool cached = uses_prefix_cache(prep);
  const bool layered = walker_uses_prefix(prep);
  minic::Program prog;
  minic::SplicedProgram spliced;
  minic::CheckedTail checked;
  // Which whole-unit Program (if any) this boot runs: the no-cache path, or
  // either cache's symbol-collision fallback.
  bool whole_unit = !cached && !layered;
  const std::map<std::string, std::set<uint32_t>>* macro_uses = nullptr;
  bool compile_ok = true;
  const support::DiagnosticEngine* diags = nullptr;
  if (patched) {
    // A patched boot is a prefix-cache boot: the module aliases the shared
    // segment exactly like the splice its recompile would have taken
    // (patchable mutants never change tail declarations, so their
    // recompile can never hit the whole-unit fallback). Counting it keeps
    // prefix_cache_hits byte-identical with patching on or off.
    if (cache_hit) *cache_hit = 1;
    // The patched module IS the clean tail with operands rewritten; the
    // clean macro-use map is the mutant's too (patch requests never touch
    // macro names, and a macro-body literal patch moves no use lines).
    macro_uses = &prep.recorded.spliced.macro_use_lines;
  } else {
    // The dedup key phase may have spliced this mutant already; reuse it.
    std::string mutated_driver =
        pre_spliced.empty()
            ? mutation::apply_mutant(config.driver, prep.sites, m)
            : std::move(pre_spliced);
    if (cached) {
      spliced = minic::compile_tail(prep.prefix, mutated_driver);
      if (!spliced.internal_error.empty()) {
        throw std::logic_error("interpreter bug on mutant: " +
                               spliced.internal_error);
      }
      // A *measured* hit: only the tail-compile path counts, not the rare
      // symbol-collision fallback to whole-unit compilation.
      if (cache_hit && !spliced.whole_unit_fallback) *cache_hit = 1;
      macro_uses = &spliced.macro_use_lines;
      compile_ok = spliced.ok();
      diags = &spliced.diags;
    } else if (layered) {
      checked = minic::check_tail(prep.prefix, mutated_driver);
      if (checked.whole_unit_fallback) {
        whole_unit = true;
      } else {
        macro_uses = &checked.macro_use_lines;
        compile_ok = checked.ok();
        diags = &checked.diags;
      }
    }
    if (whole_unit) {
      prog = minic::compile_with_prefix(prep.prefix, mutated_driver);
      if (prog.ok()) macro_uses = &prog.unit->macro_use_lines;
      compile_ok = prog.ok();
      diags = &prog.diags;
    }
  }
  if (!compile_ok) {
    rec.outcome = Outcome::kCompileTime;
    if (!diags->all().empty()) {
      rec.detail = diags->all().front().to_string();
    }
    if (snap) {
      snap->outcome = rec.outcome;
      snap->detail = rec.detail;
    }
    return rec;
  }

  hw::IoBus bus;
  auto dev = prep.device_pool.acquire();
  std::shared_ptr<hw::FlightRecorder> recorder;
  if (config.flight_recorder) {
    // Outermost shim: the recorder sees exactly the driver-visible traffic,
    // step-stamped through the bus's probe.
    recorder = std::make_shared<hw::FlightRecorder>(
        dev, config.device.port_base, &bus);
    bus.set_irq_observer(recorder.get());
    map_bound_device(bus, config.device, recorder);
  } else {
    map_bound_device(bus, config.device, dev);
  }
  minic::RunOutcome run;
  if (patched) {
    run = minic::run_module(*patched, bus, prep.entry, config.step_budget,
                            nullptr, config.watchdog_ms);
  } else if (cached) {
    run = minic::run_module(*spliced.module, bus, prep.entry,
                            config.step_budget, nullptr, config.watchdog_ms);
  } else if (layered && !whole_unit) {
    run = minic::run_tail_unit(prep.prefix, *checked.unit, bus, prep.entry,
                               config.step_budget, config.watchdog_ms);
  } else {
    run = minic::run_unit(*prog.unit, bus, prep.entry, config.step_budget,
                          config.engine, nullptr, config.watchdog_ms);
  }

  if (run.fault == minic::FaultKind::kInternal) {
    throw std::logic_error("interpreter bug on mutant: " + run.fault_message);
  }
  support::StageTimer classify_timer(support::Stage::kClassify);
  rec.steps = run.steps_used;
  bool clean = false;
  if (run.fault != minic::FaultKind::kNone) {
    rec.outcome = classify_fault(run.fault);
    rec.detail = run.fault_message;
  } else if (dev->damaged() ||
             run.return_value != prep.clean_fingerprint) {
    // Boot completed but the system is visibly wrong: persistent device
    // damage or a different world view (wrong fingerprint computed from
    // what the driver read).
    rec.outcome = Outcome::kDamagedBoot;
    rec.detail = dev->damaged() ? dev->damage_note()
                                : "wrong boot fingerprint";
  } else {
    clean = true;
    rec.outcome = classify_clean(prep, site, run.executed, *macro_uses);
  }
  if (recorder && !clean) rec.trace = recorder->render_tail();
  if (snap) {
    snap->clean = clean;
    snap->outcome = rec.outcome;
    snap->detail = rec.detail;
    snap->steps = rec.steps;
    snap->trace = rec.trace;
    if (clean) {
      snap->executed = std::move(run.executed);
      // Copy, not move: the patched path aliases the shared clean map.
      snap->macro_use_lines = *macro_uses;
    }
  }
  // Drop the bus mapping (and the recorder's inner reference) before
  // recycling the device.
  bus = hw::IoBus();
  recorder.reset();
  prep.device_pool.release(std::move(dev));
  return rec;
}

/// Classifies a canonical duplicate from its representative's boot residue
/// against the duplicate's *own* site (stream-identical mutants at
/// different sites can legitimately differ between Boot and Dead code).
MutantRecord classify_duplicate(const PreparedCampaign& prep, size_t mutant_ix,
                                const BootSnapshot& snap) {
  const mutation::Mutant& m = prep.mutants[mutant_ix];
  MutantRecord rec;
  rec.mutant_index = mutant_ix;
  rec.site = m.site;
  rec.deduped = true;
  // Key-equal mutants boot identically, so the representative's step count
  // and post-mortem are this mutant's too.
  rec.steps = snap.steps;
  rec.trace = snap.trace;
  if (snap.clean) {
    rec.outcome = classify_clean(prep, prep.sites[m.site], snap.executed,
                                 snap.macro_use_lines);
  } else {
    rec.outcome = snap.outcome;
    rec.detail = snap.detail;
  }
  return rec;
}

/// Canonical token-class key of a spliced mutant: the lexed (macro-expanded)
/// token stream — kind, line, integer value, spelling for identifiers and
/// strings — plus the macro-use lines the dead-code classification reads.
/// Two mutants with equal keys compile identically and boot identically
/// (spellings that differ only in column positions cannot affect runtime
/// behaviour; runtime messages carry lines, never columns).
std::string canonical_key(const PreparedCampaign& prep,
                          const std::string& mutated_driver) {
  support::DiagnosticEngine diags;
  support::SourceBuffer buf(prep.prefix.name, mutated_driver);
  minic::LexOptions options;
  options.seed_macros = &prep.prefix.macros;
  options.line_offset = prep.prefix.lines;
  minic::LexOutput lexed = minic::lex_unit(buf, diags, options);
  if (diags.has_errors()) {
    // Unlexable mutants keep a raw-text key: their diagnostics may cite
    // spelling-specific columns, so only byte-identical splices dedup.
    return "!" + mutated_driver;
  }
  std::string key;
  key.reserve(lexed.tokens.size() * 8);
  for (const minic::Token& t : lexed.tokens) append_token_key(key, t);
  append_macro_lines(key, lexed.macro_use_lines);
  return key;
}

/// Fast canonical key: splices the replacement token's serialization into
/// the precomputed clean key. Returns nullopt when the mutant is not
/// eligible (define-body site, multi-token site, macro-involved
/// replacement, possible token merges, unlexable replacement) — the caller
/// then takes the slow full-re-lex path. Byte-identical to the slow key for
/// every eligible mutant (a differential ctest enforces this).
std::optional<std::string> fast_canonical_key(const PreparedCampaign& prep,
                                              const mutation::Mutant& m) {
  if (prep.key_spans.empty()) return std::nullopt;
  const mutation::Site& site = prep.sites[m.site];
  if (!site.define_name.empty()) return std::nullopt;
  auto span_it = prep.key_spans.find(static_cast<uint32_t>(m.site));
  if (span_it == prep.key_spans.end()) return std::nullopt;
  // A replacement naming a live macro would expand; slow path handles it.
  if (prep.recorded.macros.count(m.replacement) != 0) return std::nullopt;
  if (splice_may_merge(prep.config->driver, site, m.replacement)) {
    return std::nullopt;
  }
  auto tok = lex_single_token(m.replacement);
  if (!tok) return std::nullopt;
  minic::Token t = *tok;
  t.loc.line = span_it->second.line;  // replacement stays on the site's line
  std::string key;
  key.reserve(prep.clean_key.size() + m.replacement.size() + 16);
  key.append(prep.clean_key, 0, span_it->second.begin);
  append_token_key(key, t);
  key.append(prep.clean_key, span_it->second.end, std::string::npos);
  return key;
}

/// Runs the clean tail through the recording compile and, when it splices
/// cleanly, builds the patcher plus the fast-key spans. Called once per
/// campaign, after the site scan, only on the cached-VM engine with
/// patching enabled.
void build_patch_context(PreparedCampaign& prep) {
  const DriverCampaignConfig& config = *prep.config;
  std::vector<minic::SiteSpan> spans;
  spans.reserve(prep.sites.size());
  for (size_t s = 0; s < prep.sites.size(); ++s) {
    spans.push_back({static_cast<uint32_t>(prep.sites[s].offset),
                     static_cast<uint32_t>(prep.sites[s].length),
                     static_cast<uint32_t>(s)});
  }
  std::sort(spans.begin(), spans.end(),
            [](const minic::SiteSpan& a, const minic::SiteSpan& b) {
              return a.offset < b.offset;
            });
  prep.recorded =
      minic::compile_tail_recording(prep.prefix, config.driver, spans);
  // The clean driver compiled whole-unit moments ago (baseline boot), so a
  // failure here can only be the symbol-collision fallback — every mutant
  // then recompiles, exactly as with patching off.
  if (!prep.recorded.spliced.ok() ||
      prep.recorded.spliced.whole_unit_fallback ||
      prep.recorded.tail_unit == nullptr) {
    return;
  }
  prep.patcher = std::make_unique<minic::bytecode::Patcher>(
      *prep.recorded.spliced.module, prep.prefix.compiled->unit,
      *prep.recorded.tail_unit, prep.recorded.macros,
      std::move(prep.recorded.patch));

  // Fast-key spans: serialize the clean stream once, remembering which key
  // bytes each site's token owns. Only sites whose token appears exactly
  // once and never via macro expansion are spliceable.
  struct SpanAgg {
    KeySpan span;
    size_t count = 0;
    bool expanded = false;
  };
  std::string key;
  key.reserve(prep.recorded.tokens.size() * 8);
  std::unordered_map<uint32_t, SpanAgg> agg;
  for (const minic::Token& t : prep.recorded.tokens) {
    size_t begin = key.size();
    append_token_key(key, t);
    if (t.site == minic::kNoSite) continue;
    SpanAgg& a = agg[t.site];
    ++a.count;
    if (t.from_expansion) a.expanded = true;
    a.span = {begin, key.size(), t.loc.line};
  }
  append_macro_lines(key, prep.recorded.tail_macro_use_lines);
  prep.clean_key = std::move(key);
  for (const auto& [site_id, a] : agg) {
    if (a.count == 1 && !a.expanded) prep.key_spans.emplace(site_id, a.span);
  }
}

}  // namespace

DriverCampaignResult run_driver_campaign(const DriverCampaignConfig& config) {
  return run_driver_campaign_slice(config, SampleSlice{});
}

DriverCampaignResult run_driver_campaign_slice(
    const DriverCampaignConfig& config, SampleSlice slice,
    CampaignSideband* sideband) {
  // Diagnostics name the configured device and entry so a failing campaign
  // of one device is never mistaken for another's.
  const std::string who = "driver campaign [" +
                          (config.device.device.empty() ? std::string("?")
                                                        : config.device.device) +
                          "]: ";
  if (slice.count == 0 || slice.index >= slice.count) {
    throw std::logic_error(who + "invalid sample slice " +
                           std::to_string(slice.index) + "/" +
                           std::to_string(slice.count) +
                           " (need 0 <= index < count)");
  }
  if (!config.device.ok()) {
    throw std::logic_error(who +
                           "no device binding configured (set "
                           "DriverCampaignConfig::device; the standard "
                           "bindings live in eval/device_bindings.h)");
  }
  PreparedCampaign prep;
  prep.config = &config;
  prep.entry = config.entry.empty() ? config.device.entry : config.entry;
  if (prep.entry.empty()) {
    throw std::logic_error(who + "no boot entry configured (neither the "
                           "config nor the device binding names one)");
  }
  prep.device_pool.set_factory(config.device.make_device);
  const std::string at_entry = " (entry " + prep.entry + ")";

  // Lex the invariant stub prefix once; every mutant re-lexes only the
  // driver tail. Mutants never touch the stubs (sites are scanned in the
  // driver alone), so the cached tokens are valid for all of them.
  const std::string prefix_text =
      config.stubs.empty() ? std::string() : config.stubs + "\n";
  prep.prefix = minic::prepare_prefix(config.unit_name, prefix_text);
  if (!prep.prefix.ok()) {
    throw std::logic_error(who + "driver stubs do not lex:\n" +
                           prep.prefix.diags.render());
  }

  // --- baseline run -----------------------------------------------------------
  minic::Program clean = minic::compile_with_prefix(prep.prefix,
                                                    config.driver);
  if (!clean.ok()) {
    throw std::logic_error(who + "unmutated driver does not compile:\n" +
                           clean.diags.render());
  }
  DriverCampaignResult result;
  result.device = config.device.device;
  result.entry = prep.entry;
  {
    hw::IoBus bus;
    auto dev = prep.device_pool.acquire();
    map_bound_device(bus, config.device, dev);
    // The baseline boot doubles as the campaign's deterministic profile
    // run: steps retired and (on the VM) the per-opcode dispatch counts.
    // Every shard recomputes these; merge validation rejects disagreement.
    const bool vm_engine = config.engine == minic::ExecEngine::kBytecodeVm;
    auto run = minic::run_unit(*clean.unit, bus, prep.entry,
                               config.step_budget, config.engine,
                               vm_engine ? &result.baseline_opcodes : nullptr,
                               config.watchdog_ms);
    result.baseline_steps = run.steps_used;
    if (run.fault != minic::FaultKind::kNone) {
      throw std::logic_error(who + "unmutated driver faults at boot" +
                             at_entry + ": " + run.fault_message);
    }
    if (run.return_value <= 0) {
      throw std::logic_error(who + "unmutated driver returned a non-positive "
                             "boot fingerprint" + at_entry);
    }
    if (dev->damaged()) {
      throw std::logic_error(who + "unmutated driver damaged the device: " +
                             dev->damage_note());
    }
    result.clean_fingerprint = run.return_value;
    bus = hw::IoBus();
    prep.device_pool.release(std::move(dev));
  }
  prep.clean_fingerprint = result.clean_fingerprint;

  // --- mutant generation ---------------------------------------------------------
  mutation::CScanOptions scan;
  scan.classes = config.is_cdevil
                     ? mutation::classes_for_cdevil_driver(config.stubs,
                                                           config.driver)
                     : mutation::classes_for_c_driver(config.driver);
  prep.sites = mutation::scan_c_sites(config.driver, scan);
  prep.mutants = mutation::generate_c_mutants(prep.sites, scan.classes);
  result.total_sites = prep.sites.size();
  result.total_mutants = prep.mutants.size();

  // --- clean-tail recording compile (patching + fast dedup keys) ------------------
  if (config.bytecode_patch && uses_prefix_cache(prep) &&
      !prep.sites.empty()) {
    build_patch_context(prep);
  }

  // The full deterministic sample is derived in every slice; the slice then
  // covers a contiguous subrange of it, so N slices together boot exactly
  // the mutants the unsharded campaign would.
  auto sample = support::sample_indices(prep.mutants.size(),
                                        config.sample_percent, config.seed);
  const auto [slice_lo, slice_hi] = sample_slice_bounds(sample.size(), slice);
  std::vector<size_t> selected(sample.begin() + slice_lo,
                               sample.begin() + slice_hi);
  result.sampled_mutants = selected.size();
  if (sideband) {
    sideband->sample_size = sample.size();
    sideband->slice_begin = slice_lo;
    sideband->slice_end = slice_hi;
    // prefix_cache_hit is assigned wholesale after the boot phase.
    sideband->canonical_hash.clear();
    if (config.dedup) sideband->canonical_hash.resize(selected.size());
  }

  // --- canonical dedup (phases 1-2) ----------------------------------------------
  // Keys are computed in parallel (per-index writes only); the first-seen
  // mapping is built sequentially afterwards, so it is deterministic at any
  // thread count.
  std::vector<size_t> dup_of(selected.size(), static_cast<size_t>(-1));
  std::vector<uint8_t> wants_snapshot(selected.size(), 0);
  std::vector<std::string> spliced(config.dedup ? selected.size() : 0);
  if (config.dedup && !selected.empty()) {
    std::vector<std::string> keys(selected.size());
    support::parallel_for(selected.size(), config.threads, [&](size_t i) {
      const mutation::Mutant& m = prep.mutants[selected[i]];
      // Token-local mutants splice their key into the precomputed clean
      // key; the rest (define-body sites, macro-involved replacements,
      // token merges) re-lex the spliced driver as before. Byte-identical
      // either way, so dedup grouping never depends on the patch flag.
      if (auto fast = fast_canonical_key(prep, m)) {
        keys[i] = std::move(*fast);
      } else {
        spliced[i] = mutation::apply_mutant(config.driver, prep.sites, m);
        keys[i] = canonical_key(prep, spliced[i]);
      }
      if (sideband) sideband->canonical_hash[i] = support::fnv128(keys[i]);
    });
    std::unordered_map<std::string, size_t> first_seen;
    first_seen.reserve(selected.size());
    for (size_t i = 0; i < selected.size(); ++i) {
      auto [it, inserted] = first_seen.emplace(std::move(keys[i]), i);
      if (!inserted) {
        dup_of[i] = it->second;
        wants_snapshot[it->second] = 1;
        ++result.deduped_mutants;
      }
    }
  }

  // --- per-mutant compile + boot (phase 3, parallel map) --------------------------
  // Workers write only their own records[i] / snapshot slots; the
  // order-sensitive tally reduction happens after the join, so the result
  // is identical at any thread count.
  result.records.resize(selected.size());
  std::vector<BootSnapshot> snapshots(config.dedup ? selected.size() : 0);
  std::vector<size_t> unique_ix;
  unique_ix.reserve(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    if (dup_of[i] == static_cast<size_t>(-1)) unique_ix.push_back(i);
  }
  std::vector<uint8_t> cache_hits(selected.size(), 0);
  support::ProgressMeter progress(who + "booting", unique_ix.size());
  std::vector<uint64_t> worker_shares;
  support::parallel_for(
      unique_ix.size(), config.threads,
      [&](size_t u) {
        size_t i = unique_ix[u];
        BootSnapshot* snap = wants_snapshot[i] ? &snapshots[i] : nullptr;
        result.records[i] = run_one_mutant(
            prep, selected[i], snap,
            config.dedup ? std::move(spliced[i]) : std::string(),
            &cache_hits[i]);
        progress.tick();
      },
      support::Metrics::enabled() ? &worker_shares : nullptr);
  support::Metrics::add_worker_records(worker_shares);
  for (uint8_t hit : cache_hits) result.prefix_cache_hits += hit;
  if (sideband) sideband->prefix_cache_hit = cache_hits;

  // --- duplicate classification (phase 4, sequential) -----------------------------
  for (size_t i = 0; i < selected.size(); ++i) {
    if (dup_of[i] != static_cast<size_t>(-1)) {
      result.records[i] =
          classify_duplicate(prep, selected[i], snapshots[dup_of[i]]);
    }
  }

  for (const MutantRecord& rec : result.records) {
    result.tally.add(rec.outcome, rec.site);
    result.patch_hits += rec.patched ? 1 : 0;
    result.patch_fallbacks += rec.patch_fallback ? 1 : 0;
  }
  return result;
}

}  // namespace eval
