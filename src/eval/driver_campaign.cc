#include "eval/driver_campaign.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"
#include "mutation/c_mutator.h"
#include "support/rng.h"
#include "support/strings.h"

namespace eval {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompileTime: return "Compile-time check";
    case Outcome::kRunTime: return "Run-time check";
    case Outcome::kDeadCode: return "Dead code";
    case Outcome::kBoot: return "Boot";
    case Outcome::kCrash: return "Crash";
    case Outcome::kInfiniteLoop: return "Infinite loop";
    case Outcome::kHalt: return "Halt";
    case Outcome::kDamagedBoot: return "Damaged boot";
  }
  return "?";
}

const char* outcome_short(Outcome o) {
  switch (o) {
    case Outcome::kCompileTime: return "compile";
    case Outcome::kRunTime: return "runtime";
    case Outcome::kDeadCode: return "dead";
    case Outcome::kBoot: return "boot";
    case Outcome::kCrash: return "crash";
    case Outcome::kInfiniteLoop: return "loop";
    case Outcome::kHalt: return "halt";
    case Outcome::kDamagedBoot: return "damaged";
  }
  return "?";
}

namespace {

Outcome classify_fault(minic::FaultKind kind) {
  switch (kind) {
    case minic::FaultKind::kDevilAssertion:
      return Outcome::kRunTime;
    case minic::FaultKind::kPanic:
      return Outcome::kHalt;
    case minic::FaultKind::kStepLimit:
      return Outcome::kInfiniteLoop;
    case minic::FaultKind::kBusFault:
    case minic::FaultKind::kDivByZero:
    case minic::FaultKind::kBadIndex:
    case minic::FaultKind::kStackOverflow:
      return Outcome::kCrash;
    case minic::FaultKind::kNone:
    case minic::FaultKind::kInternal:
      break;
  }
  throw std::logic_error("unclassifiable fault kind");
}

}  // namespace

DriverCampaignResult run_ide_campaign(const DriverCampaignConfig& config) {
  // Line offset of the driver within the concatenated unit (stubs first).
  const std::string prefix =
      config.stubs.empty() ? std::string() : config.stubs + "\n";
  const uint32_t line_offset = static_cast<uint32_t>(
      std::count(prefix.begin(), prefix.end(), '\n'));

  // --- baseline run -----------------------------------------------------------
  const std::string clean_unit = prefix + config.driver;
  minic::Program clean = minic::compile(config.unit_name, clean_unit);
  if (!clean.ok()) {
    throw std::logic_error("unmutated driver does not compile:\n" +
                           clean.diags.render());
  }
  DriverCampaignResult result;
  {
    hw::IoBus bus;
    auto disk = std::make_shared<hw::IdeDisk>();
    bus.map(0x1f0, 8, disk);
    minic::Interp interp(*clean.unit, bus, config.step_budget);
    auto run = interp.run(config.entry);
    if (run.fault != minic::FaultKind::kNone) {
      throw std::logic_error("unmutated driver faults at boot: " +
                             run.fault_message);
    }
    if (run.return_value <= 0) {
      throw std::logic_error("unmutated driver returned a non-positive boot "
                             "fingerprint");
    }
    if (disk->damaged()) {
      throw std::logic_error("unmutated driver damaged the disk");
    }
    result.clean_fingerprint = run.return_value;
  }

  // --- mutant generation ---------------------------------------------------------
  mutation::CScanOptions scan;
  scan.classes = config.is_cdevil
                     ? mutation::classes_for_cdevil_driver(config.stubs,
                                                           config.driver)
                     : mutation::classes_for_c_driver(config.driver);
  auto sites = mutation::scan_c_sites(config.driver, scan);
  auto mutants = mutation::generate_c_mutants(sites, scan.classes);
  result.total_sites = sites.size();
  result.total_mutants = mutants.size();

  auto selected = support::sample_indices(mutants.size(),
                                          config.sample_percent, config.seed);
  result.sampled_mutants = selected.size();

  // --- per-mutant compile + boot ---------------------------------------------------
  for (size_t ix : selected) {
    const mutation::Mutant& m = mutants[ix];
    const mutation::Site& site = sites[m.site];
    std::string mutated_driver =
        mutation::apply_mutant(config.driver, sites, m);
    std::string unit = prefix + mutated_driver;

    MutantRecord rec;
    rec.mutant_index = ix;
    rec.site = m.site;

    std::string compile_detail;
    minic::Program prog = minic::compile(config.unit_name, unit);
    if (!prog.ok()) {
      rec.outcome = Outcome::kCompileTime;
      if (!prog.diags.all().empty()) {
        rec.detail = prog.diags.all().front().to_string();
      }
    } else {
      hw::IoBus bus;
      auto disk = std::make_shared<hw::IdeDisk>();
      bus.map(0x1f0, 8, disk);
      minic::Interp interp(*prog.unit, bus, config.step_budget);
      auto run = interp.run(config.entry);

      if (run.fault == minic::FaultKind::kInternal) {
        throw std::logic_error("interpreter bug on mutant: " +
                               run.fault_message);
      }
      if (run.fault != minic::FaultKind::kNone) {
        rec.outcome = classify_fault(run.fault);
        rec.detail = run.fault_message;
      } else if (disk->damaged() ||
                 run.return_value != result.clean_fingerprint) {
        // Boot completed but the system is visibly wrong: clobbered disk or
        // a different world view (wrong partition/filesystem mounted).
        rec.outcome = Outcome::kDamagedBoot;
        rec.detail = disk->damaged() ? disk->damage_note()
                                     : "wrong boot fingerprint";
      } else {
        // Healthy boot: dead code iff the mutated token never executed.
        uint32_t unit_line = site.line + line_offset;
        bool executed;
        if (!site.define_name.empty()) {
          // Site inside a #define body: executed iff any use of the macro
          // sits on an executed line.
          executed = false;
          auto uses = prog.unit->macro_use_lines.find(site.define_name);
          if (uses != prog.unit->macro_use_lines.end()) {
            for (uint32_t use_line : uses->second) {
              if (run.executed_lines.count(use_line)) {
                executed = true;
                break;
              }
            }
          }
        } else {
          executed = run.executed_lines.count(unit_line) > 0;
        }
        rec.outcome = executed ? Outcome::kBoot : Outcome::kDeadCode;
      }
    }
    result.tally.add(rec.outcome, rec.site);
    result.records.push_back(std::move(rec));
  }
  return result;
}

}  // namespace eval
