#include "eval/driver_campaign.h"

#include <memory>
#include <stdexcept>

#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"
#include "mutation/c_mutator.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"

namespace eval {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompileTime: return "Compile-time check";
    case Outcome::kRunTime: return "Run-time check";
    case Outcome::kDeadCode: return "Dead code";
    case Outcome::kBoot: return "Boot";
    case Outcome::kCrash: return "Crash";
    case Outcome::kInfiniteLoop: return "Infinite loop";
    case Outcome::kHalt: return "Halt";
    case Outcome::kDamagedBoot: return "Damaged boot";
  }
  return "?";
}

const char* outcome_short(Outcome o) {
  switch (o) {
    case Outcome::kCompileTime: return "compile";
    case Outcome::kRunTime: return "runtime";
    case Outcome::kDeadCode: return "dead";
    case Outcome::kBoot: return "boot";
    case Outcome::kCrash: return "crash";
    case Outcome::kInfiniteLoop: return "loop";
    case Outcome::kHalt: return "halt";
    case Outcome::kDamagedBoot: return "damaged";
  }
  return "?";
}

namespace {

Outcome classify_fault(minic::FaultKind kind) {
  switch (kind) {
    case minic::FaultKind::kDevilAssertion:
      return Outcome::kRunTime;
    case minic::FaultKind::kPanic:
      return Outcome::kHalt;
    case minic::FaultKind::kStepLimit:
      return Outcome::kInfiniteLoop;
    case minic::FaultKind::kBusFault:
    case minic::FaultKind::kDivByZero:
    case minic::FaultKind::kBadIndex:
    case minic::FaultKind::kStackOverflow:
      return Outcome::kCrash;
    case minic::FaultKind::kNone:
    case minic::FaultKind::kInternal:
      break;
  }
  throw std::logic_error("unclassifiable fault kind");
}

/// Everything invariant across mutants, computed once per campaign and
/// shared read-only by all workers.
struct PreparedCampaign {
  const DriverCampaignConfig* config = nullptr;
  minic::PreparedPrefix prefix;  // stubs lexed once
  std::vector<mutation::Site> sites;
  std::vector<mutation::Mutant> mutants;
  int64_t clean_fingerprint = 0;
};

/// The pure per-mutant kernel: splice, compile (reusing the prefix token
/// stream), boot, classify. Touches nothing but its own locals and the
/// read-only `prep`, so any number of these can run concurrently.
MutantRecord run_one_mutant(const PreparedCampaign& prep, size_t mutant_ix) {
  const DriverCampaignConfig& config = *prep.config;
  const mutation::Mutant& m = prep.mutants[mutant_ix];
  const mutation::Site& site = prep.sites[m.site];
  std::string mutated_driver =
      mutation::apply_mutant(config.driver, prep.sites, m);

  MutantRecord rec;
  rec.mutant_index = mutant_ix;
  rec.site = m.site;

  minic::Program prog = minic::compile_with_prefix(prep.prefix,
                                                   mutated_driver);
  if (!prog.ok()) {
    rec.outcome = Outcome::kCompileTime;
    if (!prog.diags.all().empty()) {
      rec.detail = prog.diags.all().front().to_string();
    }
    return rec;
  }

  hw::IoBus bus;
  auto disk = std::make_shared<hw::IdeDisk>();
  bus.map(0x1f0, 8, disk);
  minic::Interp interp(*prog.unit, bus, config.step_budget);
  auto run = interp.run(config.entry);

  if (run.fault == minic::FaultKind::kInternal) {
    throw std::logic_error("interpreter bug on mutant: " + run.fault_message);
  }
  if (run.fault != minic::FaultKind::kNone) {
    rec.outcome = classify_fault(run.fault);
    rec.detail = run.fault_message;
  } else if (disk->damaged() ||
             run.return_value != prep.clean_fingerprint) {
    // Boot completed but the system is visibly wrong: clobbered disk or
    // a different world view (wrong partition/filesystem mounted).
    rec.outcome = Outcome::kDamagedBoot;
    rec.detail = disk->damaged() ? disk->damage_note()
                                 : "wrong boot fingerprint";
  } else {
    // Healthy boot: dead code iff the mutated token never executed.
    uint32_t unit_line = site.line + prep.prefix.lines;
    bool executed;
    if (!site.define_name.empty()) {
      // Site inside a #define body: executed iff any use of the macro
      // sits on an executed line.
      executed = false;
      auto uses = prog.unit->macro_use_lines.find(site.define_name);
      if (uses != prog.unit->macro_use_lines.end()) {
        for (uint32_t use_line : uses->second) {
          if (run.executed.test(use_line)) {
            executed = true;
            break;
          }
        }
      }
    } else {
      executed = run.executed.test(unit_line);
    }
    rec.outcome = executed ? Outcome::kBoot : Outcome::kDeadCode;
  }
  return rec;
}

}  // namespace

DriverCampaignResult run_ide_campaign(const DriverCampaignConfig& config) {
  PreparedCampaign prep;
  prep.config = &config;

  // Lex the invariant stub prefix once; every mutant re-lexes only the
  // driver tail. Mutants never touch the stubs (sites are scanned in the
  // driver alone), so the cached tokens are valid for all of them.
  const std::string prefix_text =
      config.stubs.empty() ? std::string() : config.stubs + "\n";
  prep.prefix = minic::prepare_prefix(config.unit_name, prefix_text);
  if (!prep.prefix.ok()) {
    throw std::logic_error("driver stubs do not lex:\n" +
                           prep.prefix.diags.render());
  }

  // --- baseline run -----------------------------------------------------------
  minic::Program clean = minic::compile_with_prefix(prep.prefix,
                                                    config.driver);
  if (!clean.ok()) {
    throw std::logic_error("unmutated driver does not compile:\n" +
                           clean.diags.render());
  }
  DriverCampaignResult result;
  {
    hw::IoBus bus;
    auto disk = std::make_shared<hw::IdeDisk>();
    bus.map(0x1f0, 8, disk);
    minic::Interp interp(*clean.unit, bus, config.step_budget);
    auto run = interp.run(config.entry);
    if (run.fault != minic::FaultKind::kNone) {
      throw std::logic_error("unmutated driver faults at boot: " +
                             run.fault_message);
    }
    if (run.return_value <= 0) {
      throw std::logic_error("unmutated driver returned a non-positive boot "
                             "fingerprint");
    }
    if (disk->damaged()) {
      throw std::logic_error("unmutated driver damaged the disk");
    }
    result.clean_fingerprint = run.return_value;
  }
  prep.clean_fingerprint = result.clean_fingerprint;

  // --- mutant generation ---------------------------------------------------------
  mutation::CScanOptions scan;
  scan.classes = config.is_cdevil
                     ? mutation::classes_for_cdevil_driver(config.stubs,
                                                           config.driver)
                     : mutation::classes_for_c_driver(config.driver);
  prep.sites = mutation::scan_c_sites(config.driver, scan);
  prep.mutants = mutation::generate_c_mutants(prep.sites, scan.classes);
  result.total_sites = prep.sites.size();
  result.total_mutants = prep.mutants.size();

  auto selected = support::sample_indices(prep.mutants.size(),
                                          config.sample_percent, config.seed);
  result.sampled_mutants = selected.size();

  // --- per-mutant compile + boot (parallel map) ----------------------------------
  // Workers write only their own records[i]; the order-sensitive tally
  // reduction happens after the join, so the result is identical at any
  // thread count.
  result.records.resize(selected.size());
  support::parallel_for(selected.size(), config.threads, [&](size_t i) {
    result.records[i] = run_one_mutant(prep, selected[i]);
  });
  for (const MutantRecord& rec : result.records) {
    result.tally.add(rec.outcome, rec.site);
  }
  return result;
}

}  // namespace eval
