// Tables 3/4 campaign: mutate a driver, compile each mutant, boot the
// survivors against a simulated device model, classify the outcome.
//
// The kernel is device-agnostic: everything device-specific — which model
// to construct, where it sits on the port bus, which entry point boots the
// driver — comes in through `DeviceBinding`. The standard bindings (and the
// historical IDE-named compat wrapper) live in eval/device_bindings.h, the
// only campaign file that names concrete devices.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "eval/outcome.h"
#include "hw/device_pool.h"
#include "hw/io_bus.h"
#include "minic/program.h"
#include "mutation/site.h"

namespace eval {

/// Binds a campaign to one device model: the port window the device claims
/// on the simulated bus, how to construct it, and the boot entry point its
/// drivers implement. Devices are recycled between mutant boots through a
/// reset-based `hw::DevicePool`, so `make_device` must return power-on-state
/// instances and the model's `reset()` must restore that state (cheaply —
/// the hw models keep a dirty bit so clean recycles are a register wipe).
struct DeviceBinding {
  /// Short device name used in diagnostics and reports ("ide", "busmouse").
  std::string device;
  /// I/O window mapped as [port_base, port_base + port_span).
  uint32_t port_base = 0;
  uint32_t port_span = 0;
  /// Default boot entry point for this device's drivers; used when
  /// DriverCampaignConfig::entry is empty.
  std::string entry;
  /// IRQ line the device raises on, or -1 for a purely polled binding.
  /// Event-driven bindings also get the IRQ status window
  /// (hw::IrqStatusPort at hw::kIrqStatusPortBase) mapped per boot.
  int irq_line = -1;
  /// Constructs a power-on-state device. Must be thread-safe: the pool
  /// invokes it concurrently from campaign workers.
  hw::DevicePool::Factory make_device;

  [[nodiscard]] bool ok() const { return make_device != nullptr; }
};

/// Maps `dev` (the outermost shim of a boot's device stack) at the binding's
/// port window, wiring the binding's IRQ line when it has one — and then the
/// IRQ status window, so drivers can read the in-service bitmap. Every
/// campaign boot goes through this so polled and event-driven bindings stay
/// interchangeable.
void map_bound_device(hw::IoBus& bus, const DeviceBinding& binding,
                      std::shared_ptr<hw::Device> dev);

struct DriverCampaignConfig {
  /// Generated Devil stubs, prepended to the driver. Empty for the plain C
  /// driver.
  std::string stubs;
  /// The driver translation unit that gets mutated (contains MUT markers).
  std::string driver;
  std::string unit_name = "driver.c";
  /// Boot entry point; empty derives the binding's default entry.
  std::string entry;
  /// The device under test. Must be populated (see eval/device_bindings.h
  /// for the standard bindings); run_driver_campaign throws otherwise.
  DeviceBinding device;
  /// True when identifier classes should be derived from the Devil stubs.
  bool is_cdevil = false;

  /// The paper tests a random 25% of the generated mutants (§4.2).
  unsigned sample_percent = 25;
  uint64_t seed = 20010325;  // deterministic campaigns; any seed works
  uint64_t step_budget = 3'000'000;
  /// Wall-clock cap per boot in milliseconds; 0 disables the watchdog. A
  /// trip classifies as a hang (mutation: infinite loop; fault campaign:
  /// hang) and bumps the watchdog_trips timing counter. Deliberately NOT
  /// part of the campaign fingerprint: the deterministic step budget always
  /// bounds a boot first unless the host wedges, so the cap only contains
  /// pathological wall time and never changes deterministic results.
  uint64_t watchdog_ms = 10'000;
  /// Worker threads booting mutants; 0 = hardware_concurrency. Results are
  /// identical at any thread count (records stay in mutant-index order and
  /// the tally is reduced after the join).
  unsigned threads = 1;
  /// Execution engine for mutant boots. Both engines yield byte-identical
  /// campaign results (ctest-enforced); the bytecode VM is the fast
  /// default, the tree walker the differential oracle.
  minic::ExecEngine engine = minic::ExecEngine::kBytecodeVm;
  /// Skip compiling/booting mutants whose spliced unit lexes to a token
  /// stream already seen this campaign (canonical token-class hash:
  /// token kinds, values and lines, plus macro-use lines). Duplicates stay
  /// visible in the records — classified against their own site from the
  /// representative's boot — and tallies are unchanged.
  bool dedup = true;
  /// Compile mutants through the compiled-prefix cache: the invariant stub
  /// prefix is parsed, typechecked and lowered once per campaign
  /// (`minic::prepare_prefix` stage 1) and every mutant compiles only the
  /// driver tail — splicing the cached bytecode segment on the VM engine,
  /// layering the tail unit over the prefix unit on the tree walker
  /// (`minic::check_tail` + `run_tail_unit`). Byte-identical records either
  /// way (ctest-enforced). `prefix_cache_hits` still counts only bytecode
  /// tail splices; walker layering is not a segment splice.
  bool prefix_cache = true;
  /// Boot token-local mutants from a patched copy of the clean tail
  /// bytecode (minic::bytecode::Patcher) instead of re-running the front
  /// end. Only effective with the prefix cache on the VM engine. Patched
  /// and recompiled boots are byte-identical (ctest-enforced), so this flag
  /// is deliberately NOT part of the campaign fingerprint — like `threads`,
  /// it can never change records or tallies, only `patched`/`patch_fallback`
  /// telemetry bits.
  bool bytecode_patch = true;
  /// Wrap every boot's device in a `hw::FlightRecorder` and attach the
  /// rendered port-access tail to each non-clean record (`MutantRecord::
  /// trace`). Off by default — it is part of the campaign fingerprint, so
  /// shards must agree on it. Traces are engine-invariant (the step-stamped
  /// charge discipline is) and deterministic at any thread count.
  bool flight_recorder = false;
};

struct MutantRecord {
  size_t mutant_index = 0;  // into the full mutant list
  size_t site = 0;
  Outcome outcome = Outcome::kCompileTime;
  std::string detail;       // fault message / diagnostic code, when any
  /// True when this mutant's unit was a canonical duplicate: its outcome
  /// was classified from the representative's boot without recompiling.
  bool deduped = false;
  /// Interpreter steps the boot retired (0 for compile-time outcomes;
  /// duplicates carry their representative's — identical — count).
  uint64_t steps = 0;
  /// Flight-recorder post-mortem: the rendered tail of port accesses, only
  /// for non-clean boots and only when the config enables the recorder.
  std::string trace;
  /// True when this mutant booted a patched copy of the clean tail bytecode
  /// (no per-mutant front end ran). Telemetry only — the boot itself is
  /// byte-identical to a recompiled one.
  bool patched = false;
  /// True when patching was enabled for the campaign but this mutant was
  /// structure-changing (or otherwise ineligible) and recompiled instead.
  /// Duplicates carry neither bit: they never boot at all.
  bool patch_fallback = false;
};

struct DriverCampaignResult {
  /// Device name and entry the campaign ran against (from the binding /
  /// config), echoed so reports can label tables per device.
  std::string device;
  std::string entry;
  size_t total_sites = 0;
  size_t total_mutants = 0;    // before sampling
  size_t sampled_mutants = 0;
  size_t deduped_mutants = 0;  // sampled mutants that skipped compile+boot
  /// Mutants compiled through the per-campaign compiled-prefix cache
  /// (tail-only parse/typecheck/lower spliced onto the shared segment).
  size_t prefix_cache_hits = 0;
  /// Mutants booted from a patched clean-tail module (sum of the records'
  /// `patched` bits) vs mutants that fell back to a recompile while
  /// patching was enabled (`patch_fallback` bits). Both zero when
  /// `bytecode_patch` was off or the campaign could not build a patcher.
  size_t patch_hits = 0;
  size_t patch_fallbacks = 0;
  Tally tally;
  int64_t clean_fingerprint = 0;
  /// Steps the unmutated baseline boot retired, and its per-opcode dispatch
  /// profile (bytecode engine only; all-zero on the walker). Deterministic
  /// campaign telemetry: every shard recomputes the same values, and merge
  /// validation rejects disagreement.
  uint64_t baseline_steps = 0;
  minic::bytecode::OpcodeProfile baseline_opcodes;
  std::vector<MutantRecord> records;  // one per sampled mutant
};

/// One contiguous slice of the sampled mutant sequence, in sample order:
/// slice `index` of `count` covers sample positions
/// [sample_slice_bounds(S, slice)) of the S sampled mutants. The default
/// {0, 1} is the whole sample. Slicing never changes which mutants are
/// sampled — every slice derives the full deterministic sample and takes
/// its subrange, so N slices tile the unsharded campaign exactly.
struct SampleSlice {
  size_t index = 0;
  size_t count = 1;
};

/// Floor partition of `sample_size` positions into `slice.count` contiguous
/// ranges: [begin, end) for `slice.index`. Slices differ in size by at most
/// one; when count > sample_size some slices are empty.
[[nodiscard]] inline std::pair<size_t, size_t> sample_slice_bounds(
    size_t sample_size, SampleSlice slice) {
  return {sample_size * slice.index / slice.count,
          sample_size * (slice.index + 1) / slice.count};
}

/// Per-record sideband a shard artifact (eval/shard.h) needs beyond the
/// MutantRecords: which records compiled through the prefix cache, and the
/// canonical dedup-key hash of each record so a merge can re-dedup across
/// shards. Vectors are indexed like DriverCampaignResult::records;
/// `canonical_hash` is empty when the config has dedup off.
struct CampaignSideband {
  size_t sample_size = 0;   // full sample size, before slicing
  size_t slice_begin = 0;   // this run's slice, in sample positions
  size_t slice_end = 0;
  std::vector<uint8_t> prefix_cache_hit;
  std::vector<std::pair<uint64_t, uint64_t>> canonical_hash;
};

/// Runs the campaign against the configured device binding. Preconditions
/// (std::logic_error naming the device and entry otherwise): the binding is
/// populated, and the unmutated unit compiles, boots without fault or
/// device damage, and returns a positive fingerprint.
[[nodiscard]] DriverCampaignResult run_driver_campaign(
    const DriverCampaignConfig& config);

/// Sliced variant: the full campaign prepared identically (baseline boot,
/// site scan, deterministic sample), but only the mutants in `slice` are
/// deduped, compiled and booted. Dedup is slice-local: canonical duplicates
/// are only detected within the slice, so `deduped_mutants`,
/// `prefix_cache_hits`, the records' `deduped` flags and the tally are
/// slice-local too (eval/merge.h re-dedups across slices so a merged run
/// is byte-identical to the unsharded one). `sampled_mutants` is the slice
/// record count; the sideband (optional) reports the global sample size.
/// The {0, 1} slice is exactly run_driver_campaign.
[[nodiscard]] DriverCampaignResult run_driver_campaign_slice(
    const DriverCampaignConfig& config, SampleSlice slice,
    CampaignSideband* sideband = nullptr);

/// Classifies one already-compiled-or-failed mutant run; exposed for tests.
[[nodiscard]] const char* outcome_short(Outcome o);

}  // namespace eval
