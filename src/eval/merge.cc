#include "eval/merge.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "eval/report.h"

namespace eval {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("shard merge: " + message);
}

std::string campaign_name(const ShardArtifact& a) {
  return a.device + "/" + a.label;
}

/// Checks that `indices` (ascending) is exactly 1..count; `suffix` extends
/// the duplicate/missing diagnostics ("", or " in campaign ide/C").
void check_index_coverage(const std::vector<unsigned>& indices, unsigned count,
                          const std::string& suffix) {
  unsigned expected = 1;
  for (unsigned index : indices) {
    if (index == expected) {
      ++expected;
      continue;
    }
    if (index < expected) {
      fail("duplicate shard " + std::to_string(index) + "/" +
           std::to_string(count) + suffix);
    }
    fail("missing shard " + std::to_string(expected) + "/" +
         std::to_string(count) + suffix);
  }
  if (expected != count + 1) {
    fail("missing shard " + std::to_string(expected) + "/" +
         std::to_string(count) + suffix);
  }
}

/// Checks that the artifacts' shard indices are exactly a permutation of
/// 1..count and returns them sorted by shard index.
std::vector<std::pair<unsigned, const ShardArtifact*>> sort_and_check_indices(
    std::vector<std::pair<unsigned, const ShardArtifact*>> shards,
    unsigned count, const std::string& what) {
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<unsigned> indices;
  indices.reserve(shards.size());
  for (const auto& [index, artifact] : shards) {
    (void)artifact;
    indices.push_back(index);
  }
  check_index_coverage(indices, count, " in " + what);
  return shards;
}

struct Key128 {
  uint64_t hi, lo;
  bool operator==(const Key128& o) const { return hi == o.hi && lo == o.lo; }
};
struct Key128Hash {
  size_t operator()(const Key128& k) const {
    return static_cast<size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace

DriverCampaignResult merge_shard_artifacts(
    const std::vector<std::pair<unsigned, const ShardArtifact*>>& shards) {
  if (shards.empty()) fail("no shard artifacts to merge");

  const ShardArtifact& first = *shards.front().second;
  const std::string name = campaign_name(first);
  const unsigned count = static_cast<unsigned>(shards.size());

  // Every artifact must come from the same campaign configuration: the
  // fingerprint pins driver text, device binding, seed, engine and flags.
  for (const auto& [index, artifact] : shards) {
    if (artifact->fingerprint != first.fingerprint) {
      fail("config fingerprint mismatch for campaign " + name + ": shard " +
           std::to_string(index) + " ran " + artifact->fingerprint +
           ", shard " + std::to_string(shards.front().first) + " ran " +
           first.fingerprint + " — these artifacts are from different "
           "campaign configurations and cannot be merged");
    }
    // Belt and braces for hand-edited artifacts: the fields the merge
    // copies forward must agree even if the fingerprints were doctored.
    if (artifact->device != first.device || artifact->label != first.label ||
        artifact->entry != first.entry || artifact->engine != first.engine ||
        artifact->dedup != first.dedup ||
        artifact->sample_size != first.sample_size ||
        artifact->total_sites != first.total_sites ||
        artifact->total_mutants != first.total_mutants ||
        artifact->clean_fingerprint != first.clean_fingerprint) {
      fail("shard " + std::to_string(index) + " of campaign " + name +
           " disagrees with shard " + std::to_string(shards.front().first) +
           " on campaign metadata despite equal fingerprints (corrupt "
           "artifact?)");
    }
    // Baseline telemetry is deterministic: every shard re-boots the same
    // unmutated driver, so step counts and opcode profiles must agree.
    if (artifact->baseline_steps != first.baseline_steps ||
        !(artifact->baseline_opcodes == first.baseline_opcodes)) {
      fail("shard " + std::to_string(index) + " of campaign " + name +
           " disagrees with shard " + std::to_string(shards.front().first) +
           " on the baseline boot telemetry (corrupt artifact?)");
    }
  }

  auto ordered = sort_and_check_indices(shards, count, "campaign " + name);

  // The slices must be the canonical i/N floor partition of the sample —
  // anything else means a shard ran with a different count or the artifact
  // was truncated.
  for (const auto& [index, artifact] : ordered) {
    auto [lo, hi] = sample_slice_bounds(first.sample_size,
                                        SampleSlice{index - 1, count});
    if (artifact->slice_begin != lo || artifact->slice_end != hi) {
      fail("shard " + std::to_string(index) + "/" + std::to_string(count) +
           " of campaign " + name + " covers sample positions [" +
           std::to_string(artifact->slice_begin) + ", " +
           std::to_string(artifact->slice_end) + ") but the " +
           std::to_string(count) + "-way split of " +
           std::to_string(first.sample_size) + " sampled mutants expects [" +
           std::to_string(lo) + ", " + std::to_string(hi) + ")");
    }
  }

  DriverCampaignResult merged;
  merged.device = first.device;
  merged.entry = first.entry;
  merged.total_sites = first.total_sites;
  merged.total_mutants = first.total_mutants;
  merged.sampled_mutants = first.sample_size;
  merged.clean_fingerprint = first.clean_fingerprint;
  merged.baseline_steps = first.baseline_steps;
  merged.baseline_opcodes = first.baseline_opcodes;
  merged.records.reserve(first.sample_size);

  // Concatenating in shard order restores sample order; re-dedup globally.
  // A record whose canonical key appeared in an earlier shard was compiled
  // and booted there redundantly — the unsharded run would have classified
  // it from the representative, with an identical outcome (the dedup
  // invariant), so only its flag and the counters need rewriting.
  std::unordered_set<Key128, Key128Hash> seen;
  if (first.dedup) seen.reserve(first.sample_size);
  for (const auto& [index, artifact] : ordered) {
    (void)index;
    for (const ShardRecord& r : artifact->records) {
      MutantRecord rec = r.rec;
      if (first.dedup) {
        auto [it, inserted] = seen.insert(Key128{r.key_hi, r.key_lo});
        (void)it;
        rec.deduped = !inserted;
        if (inserted) {
          merged.prefix_cache_hits += r.cache_hit ? 1 : 0;
          merged.patch_hits += rec.patched ? 1 : 0;
          merged.patch_fallbacks += rec.patch_fallback ? 1 : 0;
        } else {
          ++merged.deduped_mutants;
          // The unsharded run would have classified this record from the
          // representative without booting — duplicates carry no patch bits.
          rec.patched = false;
          rec.patch_fallback = false;
        }
      } else {
        rec.deduped = false;
        merged.prefix_cache_hits += r.cache_hit ? 1 : 0;
        merged.patch_hits += rec.patched ? 1 : 0;
        merged.patch_fallbacks += rec.patch_fallback ? 1 : 0;
      }
      merged.records.push_back(std::move(rec));
    }
  }
  for (const MutantRecord& rec : merged.records) {
    merged.tally.add(rec.outcome, rec.site);
  }
  return merged;
}

FaultCampaignResult merge_fault_artifacts(
    const std::vector<std::pair<unsigned, const FaultShardArtifact*>>& shards) {
  if (shards.empty()) fail("no shard artifacts to merge");

  const FaultShardArtifact& first = *shards.front().second;
  const std::string name = first.device + "/" + first.label;
  const unsigned count = static_cast<unsigned>(shards.size());

  for (const auto& [index, artifact] : shards) {
    if (artifact->fingerprint != first.fingerprint) {
      fail("config fingerprint mismatch for fault campaign " + name +
           ": shard " + std::to_string(index) + " ran " +
           artifact->fingerprint + ", shard " +
           std::to_string(shards.front().first) + " ran " + first.fingerprint +
           " — these artifacts are from different campaign configurations "
           "and cannot be merged");
    }
    if (artifact->device != first.device || artifact->label != first.label ||
        artifact->entry != first.entry || artifact->engine != first.engine ||
        artifact->total_scenarios != first.total_scenarios ||
        artifact->sample_size != first.sample_size ||
        artifact->clean_fingerprint != first.clean_fingerprint) {
      fail("shard " + std::to_string(index) + " of fault campaign " + name +
           " disagrees with shard " + std::to_string(shards.front().first) +
           " on campaign metadata despite equal fingerprints (corrupt "
           "artifact?)");
    }
    if (artifact->baseline_steps != first.baseline_steps ||
        !(artifact->baseline_opcodes == first.baseline_opcodes)) {
      fail("shard " + std::to_string(index) + " of fault campaign " + name +
           " disagrees with shard " + std::to_string(shards.front().first) +
           " on the baseline boot telemetry (corrupt artifact?)");
    }
  }

  std::vector<std::pair<unsigned, const FaultShardArtifact*>> ordered = shards;
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  {
    std::vector<unsigned> indices;
    indices.reserve(ordered.size());
    for (const auto& [index, artifact] : ordered) {
      (void)artifact;
      indices.push_back(index);
    }
    check_index_coverage(indices, count, " in fault campaign " + name);
  }

  for (const auto& [index, artifact] : ordered) {
    auto [lo, hi] = sample_slice_bounds(first.sample_size,
                                        SampleSlice{index - 1, count});
    if (artifact->slice_begin != lo || artifact->slice_end != hi) {
      fail("shard " + std::to_string(index) + "/" + std::to_string(count) +
           " of fault campaign " + name + " covers sample positions [" +
           std::to_string(artifact->slice_begin) + ", " +
           std::to_string(artifact->slice_end) + ") but the " +
           std::to_string(count) + "-way split of " +
           std::to_string(first.sample_size) + " sampled scenarios expects [" +
           std::to_string(lo) + ", " + std::to_string(hi) + ")");
    }
  }

  FaultCampaignResult merged;
  merged.device = first.device;
  merged.entry = first.entry;
  merged.total_scenarios = first.total_scenarios;
  merged.sampled_scenarios = first.sample_size;
  merged.clean_fingerprint = first.clean_fingerprint;
  merged.baseline_steps = first.baseline_steps;
  merged.baseline_opcodes = first.baseline_opcodes;
  merged.records.reserve(first.sample_size);
  // Concatenating in shard order restores sample order; fault scenarios
  // are never deduped, so no flags or counters need rewriting.
  for (const auto& [index, artifact] : ordered) {
    (void)index;
    merged.records.insert(merged.records.end(), artifact->records.begin(),
                          artifact->records.end());
  }
  for (const FaultRecord& rec : merged.records) {
    merged.tally.add(rec.outcome, rec.plan.port);
    if (rec.triggered) ++merged.triggered_scenarios;
  }
  return merged;
}

std::vector<MergedCampaign> merge_shard_bundles(
    const std::vector<ShardBundle>& bundles) {
  if (bundles.empty()) fail("no shard artifacts to merge");

  const unsigned count = bundles.front().shard.count;
  std::vector<std::pair<unsigned, const ShardBundle*>> indexed;
  indexed.reserve(bundles.size());
  for (const ShardBundle& b : bundles) {
    if (b.shard.count != count) {
      fail("shard count mismatch: got artifacts from a " +
           std::to_string(count) + "-way and a " +
           std::to_string(b.shard.count) + "-way sharding");
    }
    indexed.emplace_back(b.shard.index, &b);
  }
  std::sort(indexed.begin(), indexed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  {
    std::vector<unsigned> indices;
    indices.reserve(indexed.size());
    for (const auto& [index, bundle] : indexed) {
      (void)bundle;
      indices.push_back(index);
    }
    check_index_coverage(indices, count, "");
  }

  // Every shard process must have run the same campaign list, in order —
  // the bundles are slices of one run, not a grab bag.
  const std::vector<ShardArtifact>& reference = indexed.front().second->campaigns;
  for (const auto& [index, bundle] : indexed) {
    if (bundle->campaigns.size() != reference.size()) {
      fail("shard " + std::to_string(index) + " carries " +
           std::to_string(bundle->campaigns.size()) + " campaigns but shard " +
           std::to_string(indexed.front().first) + " carries " +
           std::to_string(reference.size()));
    }
    for (size_t j = 0; j < reference.size(); ++j) {
      if (bundle->campaigns[j].device != reference[j].device ||
          bundle->campaigns[j].label != reference[j].label) {
        fail("shard " + std::to_string(index) + " campaign #" +
             std::to_string(j) + " is " +
             campaign_name(bundle->campaigns[j]) + " but shard " +
             std::to_string(indexed.front().first) + " ran " +
             campaign_name(reference[j]) + " in that position");
      }
    }
  }

  std::vector<MergedCampaign> merged;
  merged.reserve(reference.size());
  for (size_t j = 0; j < reference.size(); ++j) {
    std::vector<std::pair<unsigned, const ShardArtifact*>> shards;
    shards.reserve(indexed.size());
    for (const auto& [index, bundle] : indexed) {
      shards.emplace_back(index, &bundle->campaigns[j]);
    }
    MergedCampaign m;
    m.device = reference[j].device;
    m.label = reference[j].label;
    m.engine = reference[j].engine;
    m.result = merge_shard_artifacts(shards);
    merged.push_back(std::move(m));
  }
  return merged;
}

std::vector<MergedFaultCampaign> merge_fault_bundles(
    const std::vector<ShardBundle>& bundles) {
  if (bundles.empty()) fail("no shard artifacts to merge");

  const unsigned count = bundles.front().shard.count;
  std::vector<std::pair<unsigned, const ShardBundle*>> indexed;
  indexed.reserve(bundles.size());
  for (const ShardBundle& b : bundles) {
    if (b.shard.count != count) {
      fail("shard count mismatch: got artifacts from a " +
           std::to_string(count) + "-way and a " +
           std::to_string(b.shard.count) + "-way sharding");
    }
    indexed.emplace_back(b.shard.index, &b);
  }
  std::sort(indexed.begin(), indexed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  {
    std::vector<unsigned> indices;
    indices.reserve(indexed.size());
    for (const auto& [index, bundle] : indexed) {
      (void)bundle;
      indices.push_back(index);
    }
    check_index_coverage(indices, count, "");
  }

  const std::vector<FaultShardArtifact>& reference =
      indexed.front().second->fault_campaigns;
  for (const auto& [index, bundle] : indexed) {
    if (bundle->fault_campaigns.size() != reference.size()) {
      fail("shard " + std::to_string(index) + " carries " +
           std::to_string(bundle->fault_campaigns.size()) +
           " fault campaigns but shard " +
           std::to_string(indexed.front().first) + " carries " +
           std::to_string(reference.size()));
    }
    for (size_t j = 0; j < reference.size(); ++j) {
      if (bundle->fault_campaigns[j].device != reference[j].device ||
          bundle->fault_campaigns[j].label != reference[j].label) {
        fail("shard " + std::to_string(index) + " fault campaign #" +
             std::to_string(j) + " is " +
             bundle->fault_campaigns[j].device + "/" +
             bundle->fault_campaigns[j].label + " but shard " +
             std::to_string(indexed.front().first) + " ran " +
             reference[j].device + "/" + reference[j].label +
             " in that position");
      }
    }
  }

  std::vector<MergedFaultCampaign> merged;
  merged.reserve(reference.size());
  for (size_t j = 0; j < reference.size(); ++j) {
    std::vector<std::pair<unsigned, const FaultShardArtifact*>> shards;
    shards.reserve(indexed.size());
    for (const auto& [index, bundle] : indexed) {
      shards.emplace_back(index, &bundle->fault_campaigns[j]);
    }
    MergedFaultCampaign m;
    m.device = reference[j].device;
    m.label = reference[j].label;
    m.engine = reference[j].engine;
    m.result = merge_fault_artifacts(shards);
    merged.push_back(std::move(m));
  }
  return merged;
}

bool merge_bundle_metrics(const std::vector<ShardBundle>& bundles,
                          ProcessMetrics* out) {
  bool any = false;
  ProcessMetrics merged;
  // Counter sums and bucket-wise histogram merges are commutative and
  // associative, so the bundle order cannot change the aggregate.
  for (const ShardBundle& b : bundles) {
    if (!b.has_metrics) continue;
    merge_process_metrics(merged, b.metrics);
    any = true;
  }
  if (any && out) *out = merged;
  return any;
}

std::string render_merged_report(
    const std::vector<MergedCampaign>& merged,
    const std::vector<MergedFaultCampaign>& fault_merged) {
  std::string out;
  // Standard bundles carry a C campaign followed by a CDevil campaign per
  // device; print those as the paper's paired tables. Anything else (a
  // hand-built bundle) still renders, one table per campaign.
  size_t i = 0;
  while (i < merged.size()) {
    if (i + 1 < merged.size() && merged[i].device == merged[i + 1].device &&
        merged[i].label == "C" && merged[i + 1].label == "CDevil") {
      out += render_device_section(merged[i].device, merged[i].result,
                                   merged[i + 1].result);
      i += 2;
      continue;
    }
    out += "=== " + merged[i].device + " ===\n\n";
    out += render_driver_table("Campaign " + merged[i].label + " (" +
                                   merged[i].device + ")",
                               merged[i].result);
    out += "\n";
    ++i;
  }
  // Fault campaigns render the same way, after the mutation sections (a
  // `--faults` bundle carries only fault campaigns, so the loop above
  // printed nothing for it).
  i = 0;
  while (i < fault_merged.size()) {
    if (i + 1 < fault_merged.size() &&
        fault_merged[i].device == fault_merged[i + 1].device &&
        fault_merged[i].label == "C" &&
        fault_merged[i + 1].label == "CDevil") {
      out += render_fault_section(fault_merged[i].device,
                                  fault_merged[i].result,
                                  fault_merged[i + 1].result);
      i += 2;
      continue;
    }
    out += "=== " + fault_merged[i].device + " (fault injection) ===\n\n";
    out += render_fault_table("Fault campaign " + fault_merged[i].label +
                                  " (" + fault_merged[i].device + ")",
                              fault_merged[i].result);
    out += "\n";
    ++i;
  }
  return out;
}

}  // namespace eval
