// Campaign metrics artifacts: the exported form of the telemetry subsystem.
//
// An artifact has two strictly separated sections:
//
//  - "deterministic": per-campaign counters derived only from campaign
//    results (records, dedup/prefix-cache hits, boot step totals, baseline
//    step counts and VM opcode profiles, outcome tallies). These are
//    byte-identical across thread counts and across a shard merge vs the
//    single-process run — CI compares them with `cmp`.
//  - "timings": process wall-clock telemetry (stage histograms, device-pool
//    churn, per-worker record shares). Never compared byte-for-byte; shard
//    merges aggregate it (counter sums, bucket-wise histogram merges).
//
// Serialization rides on support/json_io (compact, insertion-ordered,
// byte-stable) and the same atomic tmp+rename write path as shard bundles.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "eval/driver_campaign.h"
#include "eval/fault_campaign.h"
#include "support/json_io.h"
#include "support/metrics.h"

namespace eval {

/// One campaign's deterministic telemetry row. Mutation and fault campaigns
/// share the struct; `fault_campaign` selects which counters are meaningful
/// (and serialized): dedup/prefix-cache/unique-boot counters for mutation
/// rows, the triggered count for fault rows.
struct CampaignMetricsRow {
  std::string device;
  std::string label;   // "C" / "CDevil"
  std::string entry;
  std::string engine;  // minic::exec_engine_name
  bool fault_campaign = false;

  uint64_t records = 0;            // sampled mutants / scenarios
  uint64_t deduped = 0;            // mutation rows only
  uint64_t prefix_cache_hits = 0;  // mutation rows only
  /// Mutation rows only: boots from a patched clean-tail module vs
  /// recompiles while patching was enabled. Deterministic (the patched
  /// split is a pure function of each mutant), so they live in the
  /// deterministic section like the dedup counters.
  uint64_t patch_hits = 0;
  uint64_t patch_fallbacks = 0;
  /// Mutation rows: records that individually compiled and booted (not
  /// canonical duplicates, not compile-time failures).
  uint64_t unique_boots = 0;
  uint64_t triggered = 0;  // fault rows only

  /// Sum of interpreter steps over ALL records. Duplicates carry their
  /// representative's (identical) count, so the sum is invariant under the
  /// merge's re-dedup flag rewrites.
  uint64_t boot_steps = 0;
  uint64_t baseline_steps = 0;
  /// Zero-suppressed (opcode name, dispatch count) pairs of the baseline
  /// boot, in opcode order. Empty on the tree walker.
  std::vector<std::pair<std::string, uint64_t>> baseline_opcodes;
  /// (short outcome name, record count) pairs in outcome-enum order,
  /// zero rows omitted.
  std::vector<std::pair<std::string, uint64_t>> tally;

  friend bool operator==(const CampaignMetricsRow&,
                         const CampaignMetricsRow&) = default;
};

/// The "timings" section: one process's (or, after aggregation, one shard
/// fleet's) wall-clock telemetry. Everything here is non-deterministic.
struct ProcessMetrics {
  uint64_t threads = 0;  // summed across merged shards
  uint64_t wall_ns = 0;
  std::array<support::Histogram, support::kStageCount> stages;
  uint64_t pool_fresh = 0;
  uint64_t pool_recycled = 0;
  /// Boots killed by the wall-clock watchdog — host-speed dependent, hence
  /// a timing counter and never part of the deterministic section.
  uint64_t watchdog_trips = 0;
  support::Histogram worker_records;
  /// Campaign-service counters (support::MetricsSnapshot's service_* set).
  /// Serialized as an optional "service" sub-object only when any counter
  /// is nonzero, so artifacts from non-daemon runs are byte-identical to
  /// the pre-service format and old artifacts still parse.
  uint64_t service_jobs_queued = 0;
  uint64_t service_jobs_dispatched = 0;
  uint64_t service_cache_hits = 0;
  uint64_t service_workers_spawned = 0;
  uint64_t service_worker_retries = 0;

  friend bool operator==(const ProcessMetrics&,
                         const ProcessMetrics&) = default;
};

struct MetricsArtifact {
  std::vector<CampaignMetricsRow> campaigns;
  std::vector<CampaignMetricsRow> fault_campaigns;
  ProcessMetrics process;

  friend bool operator==(const MetricsArtifact&,
                         const MetricsArtifact&) = default;
};

/// Row builders. `engine` is the minic::exec_engine_name string of the
/// engine the campaign ran on (results do not carry it; configs and shard
/// artifacts do).
[[nodiscard]] CampaignMetricsRow campaign_metrics_row(
    const DriverCampaignResult& result, const std::string& label,
    const std::string& engine);
[[nodiscard]] CampaignMetricsRow fault_metrics_row(
    const FaultCampaignResult& result, const std::string& label,
    const std::string& engine);

/// Captures the process section from the live collector: the global
/// support::Metrics snapshot plus the caller-measured wall time and thread
/// count.
[[nodiscard]] ProcessMetrics capture_process_metrics(uint64_t threads,
                                                     uint64_t wall_ns);

/// ProcessMetrics <-> JSON, shared between metrics artifacts and the
/// optional embedded metrics of a shard bundle. from_json validates every
/// field and throws std::runtime_error (prefixed with `ctx`) on corrupt
/// input.
[[nodiscard]] support::JsonValue process_metrics_to_json(
    const ProcessMetrics& pm);
[[nodiscard]] ProcessMetrics process_metrics_from_json(
    const support::JsonValue& v, const std::string& ctx);

/// Aggregates `from` into `into`: counters sum, histograms merge bucket-wise
/// (commutative and associative, so shard order cannot change the result).
void merge_process_metrics(ProcessMetrics& into, const ProcessMetrics& from);

/// JSON round trip. serialize is byte-stable; parse validates the format
/// tag, version and every field, and throws std::runtime_error with a clear
/// diagnostic on corrupt input. parse(serialize(a)) == a, and re-serializing
/// a parsed artifact reproduces the exact input bytes.
[[nodiscard]] std::string serialize_metrics(const MetricsArtifact& artifact);
[[nodiscard]] MetricsArtifact parse_metrics(const std::string& text);

/// The "deterministic" section alone, as compact JSON — the byte string CI
/// compares across thread counts and merged-vs-single runs.
[[nodiscard]] std::string deterministic_metrics_json(
    const MetricsArtifact& artifact);

/// File wrappers on the shared atomic tmp+rename path (eval/shard.h):
/// save throws ArtifactWriteError (CLI exit 2) and never leaves a partial
/// file; load/parse errors throw std::runtime_error prefixed with the path.
void save_metrics_artifact(const std::string& path,
                           const MetricsArtifact& artifact);
[[nodiscard]] MetricsArtifact load_metrics_artifact(const std::string& path);

}  // namespace eval
