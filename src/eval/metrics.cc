#include "eval/metrics.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "eval/shard.h"
#include "minic/bytecode/bytecode.h"
#include "minic/program.h"

namespace eval {

namespace {

constexpr const char* kFormatTag = "devil-repro-metrics";
// Version 2: campaign rows carry patch_hits/patch_fallbacks and the timing
// section gained the "patch" stage histogram (stage order is validated
// strictly, so the new stage alone re-versions the format).
constexpr int64_t kFormatVersion = 2;

const support::JsonValue& require(const support::JsonValue& obj,
                                  const char* key, const std::string& ctx) {
  const support::JsonValue* v = obj.find(key);
  if (!v) {
    throw std::runtime_error(ctx + ": missing field '" + key + "'");
  }
  return *v;
}

uint64_t require_u64(const support::JsonValue& obj, const char* key,
                     const std::string& ctx) {
  int64_t v = require(obj, key, ctx).as_int();
  if (v < 0) {
    throw std::runtime_error(ctx + ": field '" + key + "' is negative");
  }
  return static_cast<uint64_t>(v);
}

const std::string& require_string(const support::JsonValue& obj,
                                  const char* key, const std::string& ctx) {
  return require(obj, key, ctx).as_string();
}

/// Zero-suppressed (name, count) pairs as an insertion-ordered JSON object.
support::JsonValue pairs_to_json(
    const std::vector<std::pair<std::string, uint64_t>>& pairs) {
  support::JsonValue obj = support::JsonValue::object();
  for (const auto& [name, count] : pairs) obj.set(name, count);
  return obj;
}

std::vector<std::pair<std::string, uint64_t>> pairs_from_json(
    const support::JsonValue& v, const std::string& ctx) {
  std::vector<std::pair<std::string, uint64_t>> pairs;
  for (const auto& [name, count] : v.members()) {
    int64_t n = count.as_int();
    if (n <= 0) {
      throw std::runtime_error(ctx + ": count for '" + name +
                               "' must be positive (the writer suppresses "
                               "zero rows)");
    }
    pairs.emplace_back(name, static_cast<uint64_t>(n));
  }
  return pairs;
}

support::JsonValue histogram_to_json(const support::Histogram& h) {
  support::JsonValue obj = support::JsonValue::object();
  obj.set("count", h.count());
  obj.set("total", h.total());
  support::JsonValue buckets = support::JsonValue::object();
  for (size_t b = 0; b < support::Histogram::kBuckets; ++b) {
    if (h.buckets()[b] != 0) buckets.set(std::to_string(b), h.buckets()[b]);
  }
  obj.set("buckets", std::move(buckets));
  return obj;
}

support::Histogram histogram_from_json(const support::JsonValue& v,
                                       const std::string& ctx) {
  support::Histogram h;
  uint64_t count = require_u64(v, "count", ctx);
  uint64_t total = require_u64(v, "total", ctx);
  const support::JsonValue& buckets = require(v, "buckets", ctx);
  uint64_t sum = 0;
  int64_t prev = -1;
  for (const auto& [key, nv] : buckets.members()) {
    size_t b = 0;
    try {
      size_t pos = 0;
      b = std::stoul(key, &pos);
      if (pos != key.size()) throw std::invalid_argument(key);
    } catch (const std::exception&) {
      throw std::runtime_error(ctx + ": bad bucket index '" + key + "'");
    }
    if (b >= support::Histogram::kBuckets) {
      throw std::runtime_error(ctx + ": bucket index " + std::to_string(b) +
                               " out of range");
    }
    if (static_cast<int64_t>(b) <= prev) {
      throw std::runtime_error(ctx + ": bucket indices must be strictly "
                               "ascending");
    }
    prev = static_cast<int64_t>(b);
    int64_t n = nv.as_int();
    if (n <= 0) {
      throw std::runtime_error(ctx + ": bucket " + std::to_string(b) +
                               " count must be positive");
    }
    h.set_bucket(b, static_cast<uint64_t>(n));
    sum += static_cast<uint64_t>(n);
  }
  if (sum != count) {
    throw std::runtime_error(ctx + ": count says " + std::to_string(count) +
                             " but the buckets sum to " + std::to_string(sum) +
                             " (corrupt artifact?)");
  }
  h.set_total(total);
  return h;
}

support::JsonValue row_to_json(const CampaignMetricsRow& row) {
  support::JsonValue c = support::JsonValue::object();
  c.set("device", row.device);
  c.set("label", row.label);
  c.set("entry", row.entry);
  c.set("engine", row.engine);
  c.set("records", row.records);
  if (row.fault_campaign) {
    c.set("triggered", row.triggered);
  } else {
    c.set("deduped", row.deduped);
    c.set("prefix_cache_hits", row.prefix_cache_hits);
    c.set("patch_hits", row.patch_hits);
    c.set("patch_fallbacks", row.patch_fallbacks);
    c.set("unique_boots", row.unique_boots);
  }
  c.set("boot_steps", row.boot_steps);
  c.set("baseline_steps", row.baseline_steps);
  c.set("baseline_opcodes", pairs_to_json(row.baseline_opcodes));
  c.set("tally", pairs_to_json(row.tally));
  return c;
}

CampaignMetricsRow row_from_json(const support::JsonValue& v,
                                 bool fault_campaign, size_t position) {
  const char* what = fault_campaign ? "fault campaign row #" : "campaign row #";
  std::string ctx = what + std::to_string(position);
  CampaignMetricsRow row;
  row.fault_campaign = fault_campaign;
  row.device = require_string(v, "device", ctx);
  row.label = require_string(v, "label", ctx);
  ctx = "metrics row " + row.device + "/" + row.label;
  row.entry = require_string(v, "entry", ctx);
  row.engine = require_string(v, "engine", ctx);
  row.records = require_u64(v, "records", ctx);
  if (fault_campaign) {
    row.triggered = require_u64(v, "triggered", ctx);
    if (row.triggered > row.records) {
      throw std::runtime_error(ctx + ": triggered exceeds the record count");
    }
  } else {
    row.deduped = require_u64(v, "deduped", ctx);
    row.prefix_cache_hits = require_u64(v, "prefix_cache_hits", ctx);
    row.patch_hits = require_u64(v, "patch_hits", ctx);
    row.patch_fallbacks = require_u64(v, "patch_fallbacks", ctx);
    row.unique_boots = require_u64(v, "unique_boots", ctx);
    if (row.deduped > row.records || row.unique_boots > row.records) {
      throw std::runtime_error(ctx + ": dedup/boot counters exceed the "
                               "record count");
    }
    if (row.patch_hits > row.records || row.patch_fallbacks > row.records) {
      throw std::runtime_error(ctx + ": patch counters exceed the "
                               "record count");
    }
  }
  row.boot_steps = require_u64(v, "boot_steps", ctx);
  row.baseline_steps = require_u64(v, "baseline_steps", ctx);
  row.baseline_opcodes = pairs_from_json(
      require(v, "baseline_opcodes", ctx), ctx + " baseline_opcodes");
  row.tally = pairs_from_json(require(v, "tally", ctx), ctx + " tally");
  uint64_t tallied = 0;
  for (const auto& [name, count] : row.tally) tallied += count;
  if (tallied != row.records) {
    throw std::runtime_error(ctx + ": tally sums to " +
                             std::to_string(tallied) + " but the row claims " +
                             std::to_string(row.records) +
                             " records (corrupt artifact?)");
  }
  return row;
}

std::vector<std::pair<std::string, uint64_t>> opcode_pairs(
    const minic::bytecode::OpcodeProfile& profile) {
  std::vector<std::pair<std::string, uint64_t>> pairs;
  for (size_t i = 0; i < minic::bytecode::kOpCount; ++i) {
    if (profile.counts[i] == 0) continue;
    pairs.emplace_back(
        minic::bytecode::op_name(static_cast<minic::bytecode::Op>(i)),
        profile.counts[i]);
  }
  return pairs;
}

support::JsonValue deterministic_to_json(const MetricsArtifact& artifact) {
  support::JsonValue det = support::JsonValue::object();
  support::JsonValue campaigns = support::JsonValue::array();
  for (const CampaignMetricsRow& row : artifact.campaigns) {
    campaigns.push_back(row_to_json(row));
  }
  det.set("campaigns", std::move(campaigns));
  support::JsonValue fault_campaigns = support::JsonValue::array();
  for (const CampaignMetricsRow& row : artifact.fault_campaigns) {
    fault_campaigns.push_back(row_to_json(row));
  }
  det.set("fault_campaigns", std::move(fault_campaigns));
  return det;
}

}  // namespace

CampaignMetricsRow campaign_metrics_row(const DriverCampaignResult& result,
                                        const std::string& label,
                                        const std::string& engine) {
  CampaignMetricsRow row;
  row.device = result.device;
  row.label = label;
  row.entry = result.entry;
  row.engine = engine;
  row.records = result.records.size();
  row.deduped = result.deduped_mutants;
  row.prefix_cache_hits = result.prefix_cache_hits;
  row.patch_hits = result.patch_hits;
  row.patch_fallbacks = result.patch_fallbacks;
  for (const MutantRecord& rec : result.records) {
    if (!rec.deduped && rec.outcome != Outcome::kCompileTime) {
      ++row.unique_boots;
    }
    row.boot_steps += rec.steps;
  }
  row.baseline_steps = result.baseline_steps;
  row.baseline_opcodes = opcode_pairs(result.baseline_opcodes);
  for (const auto& [outcome, count] : result.tally.mutants) {
    if (count > 0) row.tally.emplace_back(outcome_short(outcome), count);
  }
  return row;
}

CampaignMetricsRow fault_metrics_row(const FaultCampaignResult& result,
                                     const std::string& label,
                                     const std::string& engine) {
  CampaignMetricsRow row;
  row.fault_campaign = true;
  row.device = result.device;
  row.label = label;
  row.entry = result.entry;
  row.engine = engine;
  row.records = result.records.size();
  row.triggered = result.triggered_scenarios;
  for (const FaultRecord& rec : result.records) row.boot_steps += rec.steps;
  row.baseline_steps = result.baseline_steps;
  row.baseline_opcodes = opcode_pairs(result.baseline_opcodes);
  for (const auto& [outcome, count] : result.tally.scenarios) {
    if (count > 0) row.tally.emplace_back(fault_outcome_short(outcome), count);
  }
  return row;
}

ProcessMetrics capture_process_metrics(uint64_t threads, uint64_t wall_ns) {
  support::MetricsSnapshot snap = support::Metrics::snapshot();
  ProcessMetrics pm;
  pm.threads = threads;
  pm.wall_ns = wall_ns;
  pm.stages = snap.stages;
  pm.pool_fresh = snap.pool_fresh;
  pm.pool_recycled = snap.pool_recycled;
  pm.watchdog_trips = snap.watchdog_trips;
  pm.worker_records = snap.worker_records;
  pm.service_jobs_queued = snap.service_jobs_queued;
  pm.service_jobs_dispatched = snap.service_jobs_dispatched;
  pm.service_cache_hits = snap.service_cache_hits;
  pm.service_workers_spawned = snap.service_workers_spawned;
  pm.service_worker_retries = snap.service_worker_retries;
  return pm;
}

support::JsonValue process_metrics_to_json(const ProcessMetrics& pm) {
  support::JsonValue t = support::JsonValue::object();
  t.set("threads", pm.threads);
  t.set("wall_ns", pm.wall_ns);
  // All stages are written (zero or not) in enum order, so the section's
  // shape never depends on which stages happened to fire.
  support::JsonValue stages = support::JsonValue::object();
  for (size_t s = 0; s < support::kStageCount; ++s) {
    stages.set(support::stage_name(static_cast<support::Stage>(s)),
               histogram_to_json(pm.stages[s]));
  }
  t.set("stages", std::move(stages));
  t.set("pool_fresh", pm.pool_fresh);
  t.set("pool_recycled", pm.pool_recycled);
  t.set("watchdog_trips", pm.watchdog_trips);
  t.set("worker_records", histogram_to_json(pm.worker_records));
  // The campaign-service counters ride in an optional sub-object emitted
  // only when a daemon actually recorded something: non-daemon artifacts
  // keep the exact pre-service bytes (the CI determinism `cmp`s and the
  // round-trip goldens are format-version free).
  if (pm.service_jobs_queued != 0 || pm.service_jobs_dispatched != 0 ||
      pm.service_cache_hits != 0 || pm.service_workers_spawned != 0 ||
      pm.service_worker_retries != 0) {
    support::JsonValue svc = support::JsonValue::object();
    svc.set("jobs_queued", pm.service_jobs_queued);
    svc.set("jobs_dispatched", pm.service_jobs_dispatched);
    svc.set("cache_hits", pm.service_cache_hits);
    svc.set("workers_spawned", pm.service_workers_spawned);
    svc.set("worker_retries", pm.service_worker_retries);
    t.set("service", std::move(svc));
  }
  return t;
}

ProcessMetrics process_metrics_from_json(const support::JsonValue& v,
                                         const std::string& ctx) {
  ProcessMetrics pm;
  pm.threads = require_u64(v, "threads", ctx);
  pm.wall_ns = require_u64(v, "wall_ns", ctx);
  const support::JsonValue& stages = require(v, "stages", ctx);
  if (stages.members().size() != support::kStageCount) {
    throw std::runtime_error(ctx + ": expected " +
                             std::to_string(support::kStageCount) +
                             " stages, got " +
                             std::to_string(stages.members().size()));
  }
  for (size_t s = 0; s < support::kStageCount; ++s) {
    const char* name = support::stage_name(static_cast<support::Stage>(s));
    const auto& [key, hv] = stages.members()[s];
    if (key != name) {
      throw std::runtime_error(ctx + ": stage #" + std::to_string(s) +
                               " is '" + key + "', expected '" + name + "'");
    }
    pm.stages[s] = histogram_from_json(hv, ctx + " stage " + name);
  }
  pm.pool_fresh = require_u64(v, "pool_fresh", ctx);
  pm.pool_recycled = require_u64(v, "pool_recycled", ctx);
  pm.watchdog_trips = require_u64(v, "watchdog_trips", ctx);
  pm.worker_records = histogram_from_json(require(v, "worker_records", ctx),
                                          ctx + " worker_records");
  // Optional service section (absent in pre-service artifacts and whenever
  // every counter is zero).
  if (const support::JsonValue* svc = v.find("service")) {
    const std::string sctx = ctx + " service";
    pm.service_jobs_queued = require_u64(*svc, "jobs_queued", sctx);
    pm.service_jobs_dispatched = require_u64(*svc, "jobs_dispatched", sctx);
    pm.service_cache_hits = require_u64(*svc, "cache_hits", sctx);
    pm.service_workers_spawned = require_u64(*svc, "workers_spawned", sctx);
    pm.service_worker_retries = require_u64(*svc, "worker_retries", sctx);
  }
  return pm;
}

void merge_process_metrics(ProcessMetrics& into, const ProcessMetrics& from) {
  into.threads += from.threads;
  into.wall_ns += from.wall_ns;
  for (size_t s = 0; s < support::kStageCount; ++s) {
    into.stages[s].merge(from.stages[s]);
  }
  into.pool_fresh += from.pool_fresh;
  into.pool_recycled += from.pool_recycled;
  into.watchdog_trips += from.watchdog_trips;
  into.worker_records.merge(from.worker_records);
  into.service_jobs_queued += from.service_jobs_queued;
  into.service_jobs_dispatched += from.service_jobs_dispatched;
  into.service_cache_hits += from.service_cache_hits;
  into.service_workers_spawned += from.service_workers_spawned;
  into.service_worker_retries += from.service_worker_retries;
}

std::string serialize_metrics(const MetricsArtifact& artifact) {
  support::JsonValue root = support::JsonValue::object();
  root.set("format", kFormatTag);
  root.set("version", kFormatVersion);
  root.set("deterministic", deterministic_to_json(artifact));
  root.set("timings", process_metrics_to_json(artifact.process));
  return to_json(root);
}

std::string deterministic_metrics_json(const MetricsArtifact& artifact) {
  return to_json(deterministic_to_json(artifact));
}

MetricsArtifact parse_metrics(const std::string& text) {
  support::JsonValue root = [&] {
    try {
      return support::parse_json(text);
    } catch (const support::JsonError& e) {
      throw std::runtime_error(std::string("not a metrics artifact: ") +
                               e.what());
    }
  }();
  try {
    const std::string ctx = "metrics artifact";
    const std::string& format = require_string(root, "format", ctx);
    if (format != kFormatTag) {
      throw std::runtime_error("not a metrics artifact: format tag is '" +
                               format + "', expected '" + kFormatTag + "'");
    }
    int64_t version = require(root, "version", ctx).as_int();
    if (version != kFormatVersion) {
      throw std::runtime_error("unsupported metrics artifact version " +
                               std::to_string(version) + " (this build reads "
                               "version " + std::to_string(kFormatVersion) +
                               ")");
    }
    MetricsArtifact artifact;
    const support::JsonValue& det = require(root, "deterministic", ctx);
    const auto& campaigns = require(det, "campaigns", ctx).items();
    artifact.campaigns.reserve(campaigns.size());
    for (size_t i = 0; i < campaigns.size(); ++i) {
      artifact.campaigns.push_back(row_from_json(campaigns[i], false, i));
    }
    const auto& fault_campaigns = require(det, "fault_campaigns", ctx).items();
    artifact.fault_campaigns.reserve(fault_campaigns.size());
    for (size_t i = 0; i < fault_campaigns.size(); ++i) {
      artifact.fault_campaigns.push_back(
          row_from_json(fault_campaigns[i], true, i));
    }
    artifact.process =
        process_metrics_from_json(require(root, "timings", ctx), "timings");
    return artifact;
  } catch (const support::JsonError& e) {
    throw std::runtime_error(std::string("corrupt metrics artifact: ") +
                             e.what());
  }
}

void save_metrics_artifact(const std::string& path,
                           const MetricsArtifact& artifact) {
  write_artifact_atomically(path, serialize_metrics(artifact));
}

MetricsArtifact load_metrics_artifact(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(path + ": cannot open");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error(path + ": read failed");
  }
  try {
    return parse_metrics(buf.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace eval
