#include "mutation/c_mutator.h"

#include <cctype>
#include <set>

namespace mutation {

const std::vector<OperatorRule>& c_operator_rules() {
  // Reconstruction of Table 1. The paper's examples: bit-mask '&' confused
  // with '&&' ("some programmers prefer the operator which possesses a
  // different semantics"), shifts reversed, and +/- slips. Replacements stay
  // within the equivalent class of symbols (§3.1).
  static const std::vector<OperatorRule> rules = {
      {"&", {"&&", "|"}},
      {"|", {"||", "&"}},
      {"^", {"&", "|"}},
      {"&&", {"&", "||"}},
      {"||", {"|", "&&"}},
      {"<<", {">>"}},
      {">>", {"<<"}},
      {"~", {"!"}},
      {"!", {"~"}},
      {"+", {"-"}},
      {"-", {"+"}},
      {"&=", {"|="}},
      {"|=", {"&="}},
      {"<<=", {">>="}},
      {">>=", {"<<="}},
      {"==", {"!="}},
      {"!=", {"=="}},
  };
  return rules;
}

namespace {

const OperatorRule* rule_for(const std::string& op) {
  for (const auto& r : c_operator_rules()) {
    if (r.op == op) return &r;
  }
  return nullptr;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

const std::set<std::string>& type_keywords() {
  static const std::set<std::string> kw = {
      "void", "int", "u8", "u16", "u32", "s8", "s16", "s32", "cstring",
  };
  return kw;
}

const std::set<std::string>& c_keywords() {
  static const std::set<std::string> kw = {
      "void",  "int",    "u8",     "u16",     "u32",      "s8",
      "s16",   "s32",    "cstring", "struct", "const",    "static",
      "inline", "if",    "else",   "while",   "for",      "do",
      "return", "break", "continue", "switch", "case",    "default",
      "define", "__FILE__",
  };
  return kw;
}

/// Raw scanner over C-ish source that tracks MUT_BEGIN/MUT_END regions and
/// #define bodies. Independent from the MiniC lexer on purpose: mutation
/// needs original byte offsets and must see tokens *before* macro expansion.
class SiteScanner {
 public:
  SiteScanner(const std::string& src, const CScanOptions& opt)
      : src_(src), opt_(opt), in_region_(opt.whole_file) {}

  std::vector<Site> run() {
    while (pos_ < src_.size()) {
      if (!skip_trivia()) break;
      if (pos_ >= src_.size()) break;
      scan_token();
    }
    return sites_;
  }

 private:
  char peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  void bump() {
    if (src_[pos_] == '\n') {
      ++line_;
      if (!pending_define_.empty()) pending_define_.clear();
    }
    ++pos_;
  }

  /// Returns false at EOF. Handles comments (and the region markers hidden
  /// inside them) plus #define headers.
  bool skip_trivia() {
    for (;;) {
      char c = peek();
      if (c == '\0') return false;
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        bump();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        size_t start = pos_;
        while (peek() != '\n' && peek() != '\0') bump();
        handle_marker(src_.substr(start, pos_ - start));
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        size_t start = pos_;
        bump();
        bump();
        while (!(peek() == '*' && peek(1) == '/') && peek() != '\0') bump();
        if (peek() != '\0') {
          bump();
          bump();
        }
        handle_marker(src_.substr(start, pos_ - start));
        continue;
      }
      if (c == '#') {
        // "#define NAME" — remember the macro name; until end of line all
        // sites carry it so the campaign can map them to use lines.
        bump();
        while (peek() == ' ' || peek() == '\t') bump();
        std::string word;
        while (is_ident_char(peek())) {
          word += peek();
          bump();
        }
        if (word == "define") {
          while (peek() == ' ' || peek() == '\t') bump();
          std::string name;
          while (is_ident_char(peek())) {
            name += peek();
            bump();
          }
          pending_define_ = name;
        } else {
          while (peek() != '\n' && peek() != '\0') bump();
        }
        continue;
      }
      return true;
    }
  }

  void handle_marker(const std::string& comment) {
    if (comment.find("MUT_BEGIN") != std::string::npos) in_region_ = true;
    if (comment.find("MUT_END") != std::string::npos) {
      in_region_ = opt_.whole_file;
    }
  }

  void add_site(SiteKind kind, size_t offset, size_t length) {
    if (!in_region_) return;
    Site s;
    s.kind = kind;
    s.offset = offset;
    s.length = length;
    s.line = line_;
    s.original = src_.substr(offset, length);
    s.define_name = pending_define_;
    sites_.push_back(std::move(s));
  }

  void scan_token() {
    size_t start = pos_;
    char c = peek();

    if (is_ident_start(c)) {
      while (is_ident_char(peek())) bump();
      std::string text = src_.substr(start, pos_ - start);
      if (c_keywords().count(text)) {
        prev_token_ = text;
        return;
      }
      // Declaration sites are not mutated (renaming a declaration is a
      // different error than confusing two names); a declaration is an
      // identifier right after a type keyword.
      bool is_decl = type_keywords().count(prev_token_) > 0;
      // Identifier sites only where a same-class alternative exists.
      if (!is_decl && !opt_.classes.candidates(text).empty()) {
        add_site(SiteKind::kIdentifier, start, pos_ - start);
      }
      prev_token_ = text;
      return;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        bump();
        bump();
        while (std::isxdigit(static_cast<unsigned char>(peek()))) bump();
      } else {
        while (std::isdigit(static_cast<unsigned char>(peek()))) bump();
      }
      while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')
        bump();
      add_site(SiteKind::kLiteral, start, pos_ - start);
      prev_token_ = src_.substr(start, pos_ - start);
      return;
    }

    if (c == '"') {
      bump();
      while (peek() != '"' && peek() != '\n' && peek() != '\0') {
        if (peek() == '\\') bump();
        bump();
      }
      if (peek() == '"') bump();
      prev_token_ = "\"\"";
      return;  // string contents are not in the error model
    }

    if (c == '\'') {  // char literal (not mutated)
      bump();
      while (peek() != '\'' && peek() != '\n' && peek() != '\0') bump();
      if (peek() == '\'') bump();
      return;
    }

    // ++ / -- are not in the error model (mutating half of one would not be
    // syntactically valid); consume them whole.
    if ((c == '+' && peek(1) == '+') || (c == '-' && peek(1) == '-')) {
      bump();
      bump();
      return;
    }

    // Operator: greedy 3-, 2-, then 1-char match against the rule table
    // (plus the non-mutable punctuation, consumed silently).
    for (size_t len = 3; len >= 1; --len) {
      if (pos_ + len > src_.size()) continue;
      std::string op = src_.substr(pos_, len);
      if (rule_for(op)) {
        // Guard against splitting longer operators: "<<=" must not match
        // "<<" etc. Check the following character does not extend it.
        char next = pos_ + len < src_.size() ? src_[pos_ + len] : '\0';
        if ((op == "<<" || op == ">>" || op == "==" || op == "!=") &&
            next == '=') {
          continue;
        }
        if ((op == "&" && (next == '&' || next == '=')) ||
            (op == "|" && (next == '|' || next == '=')) ||
            (op == "^" && next == '=') || (op == "!" && next == '=') ||
            (op == "<" && next == '<') || (op == ">" && next == '>') ||
            (op == "+" && (next == '+' || next == '=')) ||
            (op == "-" && (next == '-' || next == '='))) {
          continue;
        }
        for (size_t i = 0; i < len; ++i) bump();
        add_site(SiteKind::kOperator, start, len);
        prev_token_ = op;
        return;
      }
    }
    prev_token_ = std::string(1, c);
    bump();  // punctuation we do not mutate
  }

  const std::string& src_;
  const CScanOptions& opt_;
  std::vector<Site> sites_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  bool in_region_;
  std::string pending_define_;
  std::string prev_token_;
};

const std::set<std::string>& builtin_names() {
  static const std::set<std::string> names = {
      "inb",  "inw",   "inl",    "outb",   "outw",    "outl",
      "panic", "printk", "strcmp", "udelay", "dil_eq", "dil_val",
      "devil_init",
  };
  return names;
}

/// Collects every identifier occurring in `src` (excluding keywords and
/// builtins). §3.3: "the mutation rules for identifiers replace an
/// identifier with any other defined identifier" — in a driver file every
/// identifier that appears is defined somewhere in it (macro, function,
/// global or local), so the occurrence set is the defined set.
std::vector<std::string> collect_identifiers(const std::string& src,
                                             bool include_functions) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  size_t pos = 0;
  while (pos < src.size()) {
    char c = src[pos];
    if (is_ident_start(c)) {
      std::string name;
      while (pos < src.size() && is_ident_char(src[pos])) name += src[pos++];
      // When include_functions is false, an identifier directly applied to
      // arguments (a function name) is treated as a different level of
      // abstraction (§3.1) and stays out of the confusion class.
      size_t look = pos;
      while (look < src.size() && (src[look] == ' ' || src[look] == '\t'))
        ++look;
      bool is_function = look < src.size() && src[look] == '(';
      if ((include_functions || !is_function) && !c_keywords().count(name) &&
          !builtin_names().count(name) && seen.insert(name).second) {
        out.push_back(name);
      }
      continue;
    }
    // Numeric literals: consume fully so "0x1f7" does not leak an "x1f7"
    // pseudo-identifier.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos < src.size() && is_ident_char(src[pos])) ++pos;
      continue;
    }
    // Skip comments and string literals so their words do not count.
    if (c == '/' && pos + 1 < src.size() && src[pos + 1] == '/') {
      while (pos < src.size() && src[pos] != '\n') ++pos;
      continue;
    }
    if (c == '/' && pos + 1 < src.size() && src[pos + 1] == '*') {
      pos += 2;
      while (pos + 1 < src.size() &&
             !(src[pos] == '*' && src[pos + 1] == '/'))
        ++pos;
      pos += 2;
      continue;
    }
    if (c == '"') {
      ++pos;
      while (pos < src.size() && src[pos] != '"') {
        if (src[pos] == '\\') ++pos;
        ++pos;
      }
      ++pos;
      continue;
    }
    ++pos;
  }
  return out;
}

/// Extracts `#define NAME` macro names from source text.
std::vector<std::string> define_names(const std::string& src) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = src.find("#define", pos)) != std::string::npos) {
    pos += 7;
    while (pos < src.size() && (src[pos] == ' ' || src[pos] == '\t')) ++pos;
    std::string name;
    while (pos < src.size() && is_ident_char(src[pos])) name += src[pos++];
    if (!name.empty()) out.push_back(name);
  }
  return out;
}

/// Finds identifiers following `marker` in `src` (one per occurrence).
std::vector<std::string> idents_after(const std::string& src,
                                      const std::string& marker) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = src.find(marker, pos)) != std::string::npos) {
    pos += marker.size();
    while (pos < src.size() && src[pos] == ' ') ++pos;
    std::string name;
    while (pos < src.size() && is_ident_char(src[pos])) name += src[pos++];
    if (!name.empty()) out.push_back(name);
  }
  return out;
}

}  // namespace

std::vector<Site> scan_c_sites(const std::string& source,
                               const CScanOptions& options) {
  return SiteScanner(source, options).run();
}

std::vector<Mutant> generate_c_mutants(const std::vector<Site>& sites,
                                       const IdentifierClasses& classes) {
  std::vector<Mutant> out;
  for (size_t i = 0; i < sites.size(); ++i) {
    const Site& s = sites[i];
    switch (s.kind) {
      case SiteKind::kLiteral:
        for (auto& text : mutate_int_literal(s.original)) {
          out.push_back(Mutant{i, std::move(text)});
        }
        break;
      case SiteKind::kOperator:
        if (const OperatorRule* r = rule_for(s.original)) {
          for (const auto& m : r->mutants) out.push_back(Mutant{i, m});
        }
        break;
      case SiteKind::kIdentifier:
        for (auto& cand : classes.candidates(s.original)) {
          out.push_back(Mutant{i, std::move(cand)});
        }
        break;
    }
  }
  return out;
}

IdentifierClasses classes_for_c_driver(const std::string& source) {
  IdentifierClasses classes;
  // §3.3: every identifier defined in the file is a legal replacement for
  // any other — macros, functions, globals and locals are all plain
  // integers (or worse) to the C compiler. Replacements that land out of
  // scope are exactly the mutants a compiler rejects.
  // Plain C: "any other defined identifier" (§3.3) — macros, functions,
  // globals and locals are one confusion class; the compiler's only defence
  // is scoping and the function/object distinction.
  for (const auto& name : collect_identifiers(source, true)) {
    classes.add(name, "identifier");
  }
  return classes;
}

IdentifierClasses classes_for_cdevil_driver(const std::string& stubs,
                                            const std::string& driver) {
  IdentifierClasses classes;
  // Devil stub functions, one class per semantic role (§3.3).
  for (const auto& n : idents_after(stubs, "static inline")) {
    // The identifier after the return type; handled below via get_/set_.
    (void)n;
  }
  for (const auto& n : idents_after(stubs, "struct ")) {
    if (n.size() > 2 && n.rfind("_t") == n.size() - 2) classes.add(n, "type");
  }
  for (const auto& n : idents_after(stubs, "#define ")) {
    if (n.size() > 2 && n.rfind("_t") == n.size() - 2) {
      classes.add(n, "type");  // production-mode type alias macros
    } else {
      classes.add(n, "value");  // production-mode enum value macros
    }
  }
  for (const auto& n : idents_after(stubs, "const ")) {
    (void)n;  // the type name; the value name is found below
  }
  // Debug-mode value constants: `const <T> NAME = {...}`.
  {
    size_t pos = 0;
    while ((pos = stubs.find("const ", pos)) != std::string::npos) {
      pos += 6;
      // Skip the type name.
      while (pos < stubs.size() && is_ident_char(stubs[pos])) ++pos;
      while (pos < stubs.size() && stubs[pos] == ' ') ++pos;
      std::string name;
      while (pos < stubs.size() && is_ident_char(stubs[pos]))
        name += stubs[pos++];
      if (!name.empty()) classes.add(name, "value");
    }
  }
  // Stub entry points.
  for (const auto& n : idents_after(stubs, "inline ")) (void)n;
  {
    size_t pos = 0;
    while ((pos = stubs.find("get_", pos)) != std::string::npos) {
      if (pos > 0 && is_ident_char(stubs[pos - 1])) {  // devil_raw_get_...
        pos += 4;
        continue;
      }
      std::string name = "get_";
      size_t p = pos + 4;
      while (p < stubs.size() && is_ident_char(stubs[p])) name += stubs[p++];
      classes.add(name, "get");
      pos = p;
    }
    pos = 0;
    while ((pos = stubs.find("set_", pos)) != std::string::npos) {
      if (pos > 0 && is_ident_char(stubs[pos - 1])) {
        pos += 4;
        continue;
      }
      std::string name = "set_";
      size_t p = pos + 4;
      while (p < stubs.size() && is_ident_char(stubs[p])) name += stubs[p++];
      classes.add(name, "set");
      pos = p;
    }
    pos = 0;
    while ((pos = stubs.find("mk_", pos)) != std::string::npos) {
      if (pos > 0 && is_ident_char(stubs[pos - 1])) {
        pos += 3;
        continue;
      }
      std::string name = "mk_";
      size_t p = pos + 3;
      while (p < stubs.size() && is_ident_char(stubs[p])) name += stubs[p++];
      classes.add(name, "mk");
      pos = p;
    }
  }
  // Everything else in the driver follows the general C rule: one class of
  // all defined identifiers (§3.3). Devil-interface names were classified
  // above and keep their own (narrower) classes.
  for (const auto& name : collect_identifiers(driver, false)) {
    classes.add(name, "identifier");
  }
  return classes;
}

}  // namespace mutation
