// Mutation model shared by the Devil and C mutation operators (paper §3).
//
// A *site* is a token of the original source at which the error model can
// inject a typo; a *mutant* is one concrete replacement at one site. Mutants
// store only the replacement text — the campaign splices them into the
// source on demand, so enumerating tens of thousands of mutants stays cheap.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mutation {

/// Stable identity of a site for one scanned source: its index in the
/// scanner's site vector. The campaign engine threads these through the
/// MiniC front end (as minic::SiteSpan token provenance) so the bytecode
/// compiler can map each site to the patch points it lowered to.
using SiteId = uint32_t;

enum class SiteKind { kLiteral, kOperator, kIdentifier };

[[nodiscard]] const char* site_kind_name(SiteKind k);

struct Site {
  SiteKind kind = SiteKind::kLiteral;
  size_t offset = 0;       // byte offset of the token in the original source
  size_t length = 0;       // token length in bytes
  uint32_t line = 1;       // 1-based line (stable under splicing: mutants
                           // never contain newlines)
  std::string original;    // original token spelling
  /// When the site sits inside a `#define` body, the macro's name; the
  /// harness then decides dead-code via the macro's *use* lines.
  std::string define_name;
  /// Devil bit-string sites only: the character class of the literal
  /// ("01*." for masks, "01" for enum patterns) — §3.2 requires replacement
  /// within the same semantic class.
  std::string charset;
};

struct Mutant {
  size_t site = 0;           // index into the site vector
  std::string replacement;   // replacement token spelling
};

/// Applies `m` to `source` (splices the replacement over the site's bytes).
[[nodiscard]] std::string apply_mutant(const std::string& source,
                                       const std::vector<Site>& sites,
                                       const Mutant& m);

/// Identifier classes for class-preserving identifier mutation (§3.1:
/// "chosen from among the identifiers declared at a same level of
/// abstraction").
struct IdentifierClasses {
  /// identifier -> class label ("macro", "get", "set", "value", "type", ...)
  std::map<std::string, std::string> class_of;
  /// class label -> members, in insertion order
  std::map<std::string, std::vector<std::string>> members;

  void add(const std::string& ident, const std::string& cls) {
    if (class_of.emplace(ident, cls).second) members[cls].push_back(ident);
  }
  [[nodiscard]] std::vector<std::string> candidates(
      const std::string& ident) const;
};

// ---------------------------------------------------------------------------
// Literal mutation (§3.1): one removed, inserted or replaced character,
// always within the literal's own digit class. For a 2-digit decimal this
// yields the paper's 2 + 30 + 18 = 50 raw mutants; we additionally drop
// mutants whose *value* equals the original (the paper requires mutants to
// differ semantically) and de-duplicate identical spellings.
// ---------------------------------------------------------------------------

/// Mutates the digit portion `digits` with the character class `charset`.
/// `prefix` ("0x" for hex, "" otherwise) is kept intact; returned strings
/// include the prefix.
[[nodiscard]] std::vector<std::string> mutate_digit_string(
    const std::string& prefix, const std::string& digits,
    const std::string& charset);

/// Mutates a C/Devil integer literal (decimal, octal via leading 0, or hex
/// via 0x), dropping value-equivalent results. `include_o_typo` adds the
/// paper's "0xfffff vs Oxffffff" visual confusion — valid (an identifier)
/// in C, but not part of the Devil error model, whose grammar has no
/// identifier-shaped literals (§3.2).
[[nodiscard]] std::vector<std::string> mutate_int_literal(
    const std::string& token, bool include_o_typo = true);

/// Mutates a Devil bit-string body (without quotes) over `charset`
/// ("01*." for masks, "01" for enum patterns). Returns quoted spellings.
[[nodiscard]] std::vector<std::string> mutate_bit_string(
    const std::string& body, const std::string& charset);

}  // namespace mutation
