// Mutation operators for Devil specifications (paper §3.2).
//
// Three operator families, all class-preserving:
//  - literals: decimal/hex constants and bit strings, mutated within their
//    own character class (mask strings over {0,1,*,.}, enum patterns over
//    {0,1});
//  - operators: "," <-> ".." inside integer-set/range braces, and the type
//    mapping arrows "<=", "=>", "<=>" among themselves;
//  - identifiers: port/register/variable names at *use* sites, replaced by
//    another name of the same class (never at the declaration site).
#pragma once

#include <string>
#include <vector>

#include "mutation/site.h"

namespace mutation {

/// Names declared by the specification, used to classify identifier sites.
/// Obtainable from a successful `devil::check_spec` or supplied by hand.
struct DevilNames {
  std::vector<std::string> ports;
  std::vector<std::string> registers;
  std::vector<std::string> variables;
};

/// Scans a Devil specification for mutation sites (whole file — a
/// specification is hardware-operating knowledge end to end).
[[nodiscard]] std::vector<Site> scan_devil_sites(const std::string& source,
                                                 const DevilNames& names);

/// Enumerates every mutant for `sites`.
[[nodiscard]] std::vector<Mutant> generate_devil_mutants(
    const std::vector<Site>& sites, const DevilNames& names);

}  // namespace mutation
