// Mutation operators for C / CDevil code (paper §3.1, §3.3, Table 1).
//
// Sites are collected only inside regions delimited by the comments
//   /* MUT_BEGIN */ ... /* MUT_END */
// which play the role of the paper's manual tags marking the hardware
// operating code (plain C driver) or the CDevil call sites (Devil driver).
// `#define` bodies inside a region are mutated too (port and command macros
// are precisely where hex typos live).
#pragma once

#include <string>
#include <vector>

#include "mutation/site.h"

namespace mutation {

/// One row of Table 1: a C operator and its mutant spellings.
struct OperatorRule {
  std::string op;
  std::vector<std::string> mutants;
};

/// Mutation rules for C operators — our reconstruction of the paper's
/// Table 1 (bit-manipulation confusions plus the &/&& family).
[[nodiscard]] const std::vector<OperatorRule>& c_operator_rules();

struct CScanOptions {
  bool whole_file = false;  // ignore MUT markers (tests)
  /// Identifier classes eligible for identifier mutation.
  IdentifierClasses classes;
};

/// Scans `source` and returns every mutable site, in source order. Sites of
/// kind kIdentifier are only emitted for identifiers that belong to a class
/// with at least one alternative member.
[[nodiscard]] std::vector<Site> scan_c_sites(const std::string& source,
                                             const CScanOptions& options);

/// Enumerates every mutant for `sites` (the full set; the campaign applies
/// the paper's 25% sampling on top).
[[nodiscard]] std::vector<Mutant> generate_c_mutants(
    const std::vector<Site>& sites, const IdentifierClasses& classes);

/// Builds the identifier classes for a classic C driver: every `#define`
/// name in `source` joins the single class "macro" (§3.3: macros all look
/// like integers to the compiler, so any macro can be confused with any
/// other).
[[nodiscard]] IdentifierClasses classes_for_c_driver(
    const std::string& source);

/// Builds the identifier classes for a CDevil driver: stub get/set function
/// names, Devil value constants and Devil type names are each their own
/// class (§3.3: "mutations for these identifiers are always performed within
/// the same semantic class"), and the driver's own macros join "macro".
[[nodiscard]] IdentifierClasses classes_for_cdevil_driver(
    const std::string& stubs, const std::string& driver);

}  // namespace mutation
