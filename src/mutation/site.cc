#include "mutation/site.h"

#include <algorithm>
#include <set>

#include "support/strings.h"

namespace mutation {

const char* site_kind_name(SiteKind k) {
  switch (k) {
    case SiteKind::kLiteral: return "literal";
    case SiteKind::kOperator: return "operator";
    case SiteKind::kIdentifier: return "identifier";
  }
  return "?";
}

std::string apply_mutant(const std::string& source,
                         const std::vector<Site>& sites, const Mutant& m) {
  const Site& s = sites[m.site];
  return support::splice(source, s.offset, s.length, m.replacement);
}

std::vector<std::string> IdentifierClasses::candidates(
    const std::string& ident) const {
  auto it = class_of.find(ident);
  if (it == class_of.end()) return {};
  std::vector<std::string> out;
  for (const auto& member : members.at(it->second)) {
    if (member != ident) out.push_back(member);
  }
  return out;
}

std::vector<std::string> mutate_digit_string(const std::string& prefix,
                                             const std::string& digits,
                                             const std::string& charset) {
  std::set<std::string> seen;
  std::vector<std::string> out;
  auto emit = [&](const std::string& body) {
    if (body.empty() || body == digits) return;
    if (seen.insert(body).second) out.push_back(prefix + body);
  };

  // Remove one character.
  if (digits.size() > 1) {
    for (size_t i = 0; i < digits.size(); ++i) {
      std::string d = digits;
      d.erase(i, 1);
      emit(d);
    }
  }
  // Insert one character from the class at every position.
  for (size_t i = 0; i <= digits.size(); ++i) {
    for (char c : charset) {
      std::string d = digits;
      d.insert(i, 1, c);
      emit(d);
    }
  }
  // Replace one character with a different one from the class.
  for (size_t i = 0; i < digits.size(); ++i) {
    for (char c : charset) {
      if (c == digits[i]) continue;
      std::string d = digits;
      d[i] = c;
      emit(d);
    }
  }
  return out;
}

namespace {

/// Value of a C integer literal (handles 0x / leading-0 octal / decimal).
uint64_t c_literal_value(const std::string& t) {
  try {
    if (t.size() > 2 && (t[1] == 'x' || t[1] == 'X')) {
      return std::stoull(t.substr(2), nullptr, 16);
    }
    if (t.size() > 1 && t[0] == '0') return std::stoull(t, nullptr, 8);
    return std::stoull(t, nullptr, 10);
  } catch (...) {
    return ~0ULL;  // un-parsable (e.g. '9' digits in octal): treat as unique
  }
}

bool valid_c_literal(const std::string& t) {
  if (t.size() > 2 && (t[1] == 'x' || t[1] == 'X')) return true;
  if (t.size() > 1 && t[0] == '0') {
    // Octal: digits 8 and 9 would not compile; such mutants are rejected by
    // construction (§3.1: mutants are syntactically correct).
    return t.find('8') == std::string::npos &&
           t.find('9') == std::string::npos;
  }
  return true;
}

}  // namespace

std::vector<std::string> mutate_int_literal(const std::string& token,
                                            bool include_o_typo) {
  // Strip integer suffixes; they stay in place after the digits.
  std::string core = token;
  std::string suffix;
  while (!core.empty() &&
         (core.back() == 'u' || core.back() == 'U' || core.back() == 'l' ||
          core.back() == 'L')) {
    suffix.insert(suffix.begin(), core.back());
    core.pop_back();
  }

  std::string prefix, digits, charset;
  if (core.size() > 2 && (core[1] == 'x' || core[1] == 'X')) {
    prefix = core.substr(0, 2);
    digits = core.substr(2);
    charset = "0123456789abcdef";
  } else if (core.size() > 1 && core[0] == '0') {
    prefix = "";
    digits = core;
    charset = "01234567";
  } else {
    prefix = "";
    digits = core;
    charset = "0123456789";
  }

  uint64_t original_value = c_literal_value(core);
  std::vector<std::string> out;
  for (const std::string& cand : mutate_digit_string(prefix, digits, charset)) {
    if (!valid_c_literal(cand)) continue;
    if (c_literal_value(cand) == original_value) continue;  // same semantics
    out.push_back(cand + suffix);
  }
  // Visual-confusion typo from the paper's own motivation ("0xfffff looks
  // similar to Oxffffff"): a leading zero typed as capital O turns the
  // literal into an identifier — still one syntactically valid token in C.
  if (include_o_typo && !core.empty() && core[0] == '0') {
    out.push_back("O" + core.substr(1) + suffix);
  }
  return out;
}

std::vector<std::string> mutate_bit_string(const std::string& body,
                                           const std::string& charset) {
  std::vector<std::string> out;
  for (const std::string& cand : mutate_digit_string("", body, charset)) {
    out.push_back("'" + cand + "'");
  }
  return out;
}

}  // namespace mutation
