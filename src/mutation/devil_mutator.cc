#include "mutation/devil_mutator.h"

#include <algorithm>

#include "devil/lexer.h"
#include "support/diagnostics.h"

namespace mutation {

namespace {

using devil::Token;
using devil::TokKind;

bool contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

const std::vector<std::string>* class_members(const DevilNames& names,
                                              const std::string& ident) {
  if (contains(names.ports, ident)) return &names.ports;
  if (contains(names.registers, ident)) return &names.registers;
  if (contains(names.variables, ident)) return &names.variables;
  return nullptr;
}

struct ScanState {
  const std::vector<Token>& toks;
  const DevilNames& names;
  std::vector<Site> sites;

  const Token& prev(size_t i) const {
    return toks[i == 0 ? 0 : i - 1];
  }
  const Token& next(size_t i) const {
    return toks[i + 1 < toks.size() ? i + 1 : toks.size() - 1];
  }

  void add(const Token& t, SiteKind kind, std::string charset = {}) {
    Site s;
    s.kind = kind;
    s.offset = t.range.begin.offset;
    s.length = t.range.size();
    s.line = t.range.begin.line;
    s.original = t.text;
    s.charset = std::move(charset);
    sites.push_back(std::move(s));
  }
};

}  // namespace

std::vector<Site> scan_devil_sites(const std::string& source,
                                   const DevilNames& names) {
  support::DiagnosticEngine diags;
  support::SourceBuffer buf("spec.dil", source);
  devil::Lexer lexer(buf, diags);
  auto toks = lexer.lex_all();
  if (diags.has_errors()) return {};  // un-lexable input: no sites

  ScanState st{toks, names, {}};

  // Brace contexts: true when the `{...}` we are inside is an integer
  // range/set (opened after `@` or after `int`), where "," <-> ".." is a
  // syntactically valid swap.
  std::vector<bool> brace_is_range;

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    switch (t.kind) {
      case TokKind::kLBrace: {
        bool range_ctx = st.prev(i).is(TokKind::kAt) ||
                         st.prev(i).is(TokKind::kKwInt);
        brace_is_range.push_back(range_ctx);
        break;
      }
      case TokKind::kRBrace:
        if (!brace_is_range.empty()) brace_is_range.pop_back();
        break;

      case TokKind::kInt: {
        // Integer literal: offsets, widths, bit indices, range bounds,
        // pre-action values. The literal rules apply (hex class when the
        // spelling is 0x..., decimal otherwise).
        if (!mutate_int_literal(t.text, false).empty()) {
          st.add(t, SiteKind::kLiteral);
        }
        break;
      }
      case TokKind::kBitString: {
        // Class depends on context: `mask '...'` admits {0,1,*,.};
        // enum patterns after an arrow admit {0,1} only.
        bool is_pattern = st.prev(i).is(TokKind::kArrowRead) ||
                          st.prev(i).is(TokKind::kArrowWrite) ||
                          st.prev(i).is(TokKind::kArrowBoth);
        st.add(t, SiteKind::kLiteral, is_pattern ? "01" : "01*.");
        break;
      }

      case TokKind::kComma:
      case TokKind::kDotDot:
        if (!brace_is_range.empty() && brace_is_range.back()) {
          st.add(t, SiteKind::kOperator);
        }
        break;

      case TokKind::kArrowRead:
      case TokKind::kArrowWrite:
      case TokKind::kArrowBoth:
        st.add(t, SiteKind::kOperator);
        break;

      case TokKind::kIdent: {
        // Declaration sites are excluded (§3.2): a register/variable/device
        // name right after its keyword, a port parameter (followed by ':'),
        // or an enum item name (followed by an arrow).
        const Token& p = st.prev(i);
        if (p.is(TokKind::kKwRegister) || p.is(TokKind::kKwVariable) ||
            p.is(TokKind::kKwDevice)) {
          break;
        }
        const Token& n = st.next(i);
        if (n.is(TokKind::kColon) || n.is(TokKind::kArrowRead) ||
            n.is(TokKind::kArrowWrite) || n.is(TokKind::kArrowBoth)) {
          break;
        }
        const auto* cls = class_members(names, t.text);
        if (cls && cls->size() > 1) {
          st.add(t, SiteKind::kIdentifier);
        }
        break;
      }
      default:
        break;
    }
  }
  return st.sites;
}

std::vector<Mutant> generate_devil_mutants(const std::vector<Site>& sites,
                                           const DevilNames& names) {
  std::vector<Mutant> out;
  for (size_t i = 0; i < sites.size(); ++i) {
    const Site& s = sites[i];
    switch (s.kind) {
      case SiteKind::kLiteral:
        if (!s.charset.empty()) {
          for (auto& text : mutate_bit_string(s.original, s.charset)) {
            out.push_back(Mutant{i, std::move(text)});
          }
        } else {
          for (auto& text : mutate_int_literal(s.original, false)) {
            out.push_back(Mutant{i, std::move(text)});
          }
        }
        break;
      case SiteKind::kOperator: {
        if (s.original == ",") {
          out.push_back(Mutant{i, ".."});
        } else if (s.original == "..") {
          out.push_back(Mutant{i, ","});
        } else {
          for (const char* arrow : {"<=", "=>", "<=>"}) {
            if (s.original != arrow) out.push_back(Mutant{i, arrow});
          }
        }
        break;
      }
      case SiteKind::kIdentifier: {
        const auto* cls = class_members(names, s.original);
        if (!cls) break;
        for (const auto& cand : *cls) {
          if (cand != s.original) out.push_back(Mutant{i, cand});
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace mutation
