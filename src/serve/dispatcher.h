// Fans one campaign job out as N worker subprocesses, each running the
// existing `mutation_hunt --shard i/N --out <artifact>` path, then merges
// the shard artifacts back through eval/merge — so the report a dispatch
// produces is byte-identical to the single-process run (the merge layer
// validates fingerprints, 1..N coverage and slice tiling, and re-dedups
// across shards).
//
// Fault tolerance: every shard has a wall-clock deadline fixed at spawn
// time and a bounded retry budget. A worker that times out is killed; a
// worker that dies on a signal, exits non-zero, or leaves an unloadable
// artifact is re-dispatched — only its own slice reruns, and the merged
// report is still byte-identical because the artifacts carry everything the
// merge validates. Spec-kind campaigns (Table 2) have no slice API and run
// in-process instead.
#pragma once

#include <cstdint>
#include <string>

#include "eval/campaign_spec.h"

namespace serve {

struct DispatcherConfig {
  /// Worker executable: the mutation_hunt binary itself (the daemon passes
  /// its own path). Must be non-empty for driver/fault campaigns.
  std::string worker_binary;
  /// Directory for shard artifacts and per-worker logs. Artifacts are
  /// removed after a successful merge; worker logs of failed attempts are
  /// kept for post-mortem.
  std::string scratch_dir;
  /// Shard worker processes to fan the job out to (>= 1).
  unsigned workers = 3;
  /// Re-dispatch budget per shard, on top of the first attempt.
  unsigned worker_retries = 2;
  /// Per-attempt wall-clock budget; a worker past it is killed and retried.
  /// 0 waits forever.
  uint64_t worker_timeout_ms = 600'000;
  /// Robustness knob (wire.h CampaignRequest::kill_shard): 1-based shard
  /// whose first attempt is SIGKILLed right after spawn, 0 = off.
  unsigned kill_shard = 0;
  /// Names this job in scratch filenames, progress lines and errors.
  std::string job_tag = "job";
};

struct DispatchOutcome {
  /// The rendered report body — byte-identical to the single-process run's
  /// output minus its two header lines.
  std::string report;
  uint64_t workers_spawned = 0;
  uint64_t worker_retries = 0;
};

/// Runs `spec` to completion under `config`. Throws std::runtime_error
/// naming the job and the failing shard when a worker exhausts its retry
/// budget, the artifacts do not merge, or the config is unusable. Progress
/// (one tick per finished shard) reports through support::ProgressMeter,
/// so it is visible exactly when the daemon runs with `--progress`.
[[nodiscard]] DispatchOutcome dispatch_campaign(const eval::CampaignSpec& spec,
                                                const DispatcherConfig& config);

}  // namespace serve
