#include "serve/campaign_service.h"

#include <unistd.h>

#include <cstdio>
#include <utility>

#include "support/metrics.h"

namespace serve {

namespace {

/// Heartbeat lines ride the same switch as every other progress output: the
/// daemon run with `--progress` narrates each job on stderr.
void heartbeat(uint64_t seq, const std::string& what) {
  if (!support::ProgressMeter::enabled()) return;
  std::fprintf(stderr, "serve: job %llu %s\n",
               static_cast<unsigned long long>(seq), what.c_str());
}

}  // namespace

CampaignService::CampaignService(ServiceConfig config)
    : config_(std::move(config)) {}

CampaignService::~CampaignService() { stop(); }

void CampaignService::start() {
  listener_ = Listener::bind_and_listen(config_.listen_target);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
  executor_ = std::thread([this] { execute_loop(); });
}

void CampaignService::stop() {
  if (!started_) return;
  listener_.close_listener();  // accept_connection returns -1
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  // The acceptor is down, so connections_ can no longer grow.
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) t.join();
  if (executor_.joinable()) executor_.join();
  started_ = false;
}

void CampaignService::accept_loop() {
  for (;;) {
    int fd = listener_.accept_connection();
    if (fd < 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void CampaignService::handle_connection(int fd) {
  CampaignResponse error_response;
  try {
    std::string payload;
    if (!read_frame(fd, config_.max_request_bytes, &payload)) {
      ::close(fd);  // peer hung up without sending a request
      return;
    }
    Job job;
    job.request = parse_campaign_request(payload);
    job.fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        error_response.error = "service is shutting down";
      } else if (queue_.size() >= config_.queue_limit) {
        error_response.error =
            "queue full (" + std::to_string(config_.queue_limit) +
            " jobs) — retry later";
      } else {
        job.seq = ++next_seq_;
        queue_.push_back(std::move(job));
        support::Metrics::add_service_job_queued();
        heartbeat(queue_.back().seq, "queued (depth " +
                                         std::to_string(queue_.size()) + ")");
        queue_cv_.notify_one();
        return;  // the executor owns fd now
      }
    }
  } catch (const std::exception& e) {
    error_response.error = e.what();
  }
  error_response.ok = false;
  respond(fd, error_response);
}

void CampaignService::execute_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, nothing left
      job = std::move(queue_.front());
      queue_.pop_front();
      if (stopping_) {
        // Fail fast instead of running a campaign nobody will wait for.
        lock.unlock();
        CampaignResponse resp;
        resp.error = "service is shutting down";
        respond(job.fd, resp);
        continue;
      }
    }
    execute_job(job);
  }
}

void CampaignService::execute_job(Job& job) {
  CampaignResponse resp;
  try {
    resp = run_or_replay(job.request, job.seq);
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
    heartbeat(job.seq, std::string("failed: ") + e.what());
  }
  respond(job.fd, resp);
}

CampaignResponse CampaignService::run_or_replay(const CampaignRequest& request,
                                                uint64_t seq) {
  CampaignResponse resp;
  resp.fingerprint = eval::campaign_spec_fingerprint(request.spec);
  if (request.use_cache) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(resp.fingerprint);
    if (it != cache_.end()) {
      support::Metrics::add_service_cache_hit();
      heartbeat(seq, "cache hit " + resp.fingerprint);
      resp.ok = true;
      resp.cache_hit = true;
      resp.report = it->second;
      return resp;
    }
  }

  DispatcherConfig dispatch = config_.dispatch;
  if (request.workers != 0) dispatch.workers = request.workers;
  dispatch.kill_shard = request.kill_shard;
  dispatch.job_tag = "job" + std::to_string(seq);
  heartbeat(seq, "dispatching " + resp.fingerprint + " (" +
                     eval::campaign_kind_name(request.spec.kind) +
                     ", device " + request.spec.device + ", " +
                     std::to_string(dispatch.workers) + " worker(s))");
  support::Metrics::add_service_job_dispatched();

  DispatchOutcome outcome = dispatch_campaign(request.spec, dispatch);
  support::Metrics::add_service_workers_spawned(outcome.workers_spawned);
  support::Metrics::add_service_worker_retries(outcome.worker_retries);
  heartbeat(seq, "done (" + std::to_string(outcome.workers_spawned) +
                     " worker(s), " + std::to_string(outcome.worker_retries) +
                     " retried)");

  resp.ok = true;
  resp.workers_spawned = outcome.workers_spawned;
  resp.worker_retries = outcome.worker_retries;
  resp.report = outcome.report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.emplace(resp.fingerprint, resp.report).second) {
      cache_order_.push_back(resp.fingerprint);
      while (cache_order_.size() > config_.cache_capacity) {
        cache_.erase(cache_order_.front());
        cache_order_.pop_front();
      }
    }
  }
  return resp;
}

void CampaignService::respond(int fd, const CampaignResponse& response) {
  try {
    write_frame(fd, serialize_campaign_response(response));
  } catch (const WireError&) {
    // The client hung up before the answer; the result is cached anyway.
  }
  ::close(fd);
}

}  // namespace serve
