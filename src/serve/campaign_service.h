// The `mutation_hunt --serve` daemon: accepts campaign requests over a
// stream socket (serve/wire.h frames), queues them on a bounded FIFO, and
// executes them one at a time — each job fanning out to shard worker
// subprocesses through serve/dispatcher.h, or answered straight from the
// fingerprint-keyed result cache.
//
// Threading: one acceptor thread blocks in accept; each connection gets a
// short-lived reader thread that parses the request, enqueues {request, fd}
// and exits (a malformed or oversized request is answered with an error
// response right there — the daemon never dies on bad input); one executor
// thread drains the queue in order and owns writing every response. Serial
// execution is deliberate: one campaign already saturates the machine with
// its shard workers, so concurrency lives inside a job, not across jobs.
//
// Caching: results are keyed by eval::campaign_spec_fingerprint — the same
// config fingerprint the shard artifacts pin — so a cache hit is provably
// the byte-identical report and costs zero mutant boots. Dispatch knobs
// (workers, kill_shard, cache bypass) are not part of the key; they cannot
// change the report. The cache is bounded with FIFO eviction, and every
// computed result populates it even when the request bypassed lookup.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/dispatcher.h"
#include "serve/wire.h"

namespace serve {

struct ServiceConfig {
  /// Endpoint to listen on (wire.h grammar: bare port or unix socket path;
  /// port "0" binds ephemeral and endpoint() reports the actual port).
  std::string listen_target;
  /// Worker fan-out defaults; a request's non-zero `workers` overrides the
  /// shard count, its `kill_shard` is passed through per job.
  DispatcherConfig dispatch;
  /// Jobs admitted to the FIFO at once; further requests are answered with
  /// an error response instead of queueing.
  size_t queue_limit = 16;
  /// Request-frame payload cap handed to read_frame.
  size_t max_request_bytes = 1 << 20;
  /// Cached reports kept (FIFO eviction).
  size_t cache_capacity = 64;
};

/// The daemon. start() binds and launches the threads; stop() is graceful —
/// in-flight work finishes, queued-but-unstarted jobs are answered with a
/// shutdown error. Destruction stops implicitly.
class CampaignService {
 public:
  explicit CampaignService(ServiceConfig config);
  ~CampaignService();
  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Binds the listener and starts serving. Throws WireError when the
  /// endpoint cannot be bound.
  void start();

  /// Stops accepting, drains the current job, fails the rest, joins every
  /// thread. Idempotent.
  void stop();

  /// The endpoint clients should dial (actual port for a "0" bind).
  [[nodiscard]] const std::string& endpoint() const {
    return listener_.endpoint();
  }

 private:
  struct Job {
    CampaignRequest request;
    int fd = -1;
    uint64_t seq = 0;
  };

  void accept_loop();
  void handle_connection(int fd);
  void execute_loop();
  void execute_job(Job& job);
  [[nodiscard]] CampaignResponse run_or_replay(const CampaignRequest& request,
                                               uint64_t seq);
  void respond(int fd, const CampaignResponse& response);

  ServiceConfig config_;
  Listener listener_;
  std::thread acceptor_;
  std::thread executor_;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> connections_;
  bool stopping_ = false;
  bool started_ = false;
  uint64_t next_seq_ = 0;

  /// fingerprint -> rendered report, insertion-ordered for FIFO eviction.
  std::unordered_map<std::string, std::string> cache_;
  std::deque<std::string> cache_order_;
};

}  // namespace serve
