#include "serve/dispatcher.h"

#include <signal.h>

#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

#include "corpus/specs.h"
#include "eval/merge.h"
#include "eval/report.h"
#include "eval/shard.h"
#include "eval/spec_campaign.h"
#include "support/metrics.h"
#include "support/subprocess.h"

namespace serve {

namespace {

[[noreturn]] void fail(const std::string& job_tag, const std::string& what) {
  throw std::runtime_error("dispatch [" + job_tag + "]: " + what);
}

/// One shard's dispatch state across attempts.
struct ShardJob {
  unsigned index = 0;  // 1-based
  std::vector<std::string> argv;
  std::string artifact_path;
  std::string log_path;
  pid_t pid = -1;
  uint64_t deadline_ns = 0;  // 0 = no deadline
  unsigned attempts = 0;
  bool done = false;
};

void spawn_shard(ShardJob& shard, uint64_t timeout_ms) {
  shard.pid = support::spawn_process(shard.argv, shard.log_path);
  shard.deadline_ns =
      timeout_ms == 0 ? 0 : support::monotonic_ns() + timeout_ms * 1'000'000;
  shard.attempts++;
}

/// Waits out `shard` against its spawn-time deadline. Returns "" when the
/// worker exited cleanly, else a one-line reason for the retry path (the
/// worker is already killed/reaped either way).
std::string await_shard(ShardJob& shard) {
  uint64_t timeout_ms = 0;
  if (shard.deadline_ns != 0) {
    uint64_t now = support::monotonic_ns();
    // Past-deadline shards still get one 1ms poll: a worker that finished
    // while we waited on its siblings is a success, not a timeout.
    timeout_ms =
        now >= shard.deadline_ns ? 1 : (shard.deadline_ns - now) / 1'000'000 + 1;
  }
  support::WaitResult wr = support::wait_process(shard.pid, timeout_ms);
  if (wr.timed_out) {
    support::kill_process(shard.pid);
    return "timed out after " + std::to_string(timeout_ms) + "ms";
  }
  shard.pid = -1;
  if (!wr.clean_exit()) return wr.describe();
  return "";
}

DispatchOutcome run_spec_job(const eval::CampaignSpec& spec) {
  eval::SpecCampaignConfig config = eval::spec_campaign_config_for(spec);
  const auto& entries = corpus::all_specs();
  support::ProgressMeter meter("spec campaigns", entries.size());
  std::vector<eval::SpecCampaignRow> rows;
  rows.reserve(entries.size());
  for (const auto& entry : entries) {
    rows.push_back(eval::run_spec_campaign(entry, config));
    meter.tick();
  }
  DispatchOutcome out;
  out.report = eval::render_table2(rows);
  return out;
}

DispatchOutcome run_shard_job(const eval::CampaignSpec& spec,
                              const DispatcherConfig& config) {
  if (config.worker_binary.empty()) {
    fail(config.job_tag, "no worker binary configured");
  }
  if (config.scratch_dir.empty()) {
    fail(config.job_tag, "no scratch directory configured");
  }
  const unsigned n = config.workers == 0 ? 1 : config.workers;
  std::vector<std::string> spec_args = eval::campaign_spec_to_args(spec);

  std::vector<ShardJob> shards(n);
  for (unsigned i = 1; i <= n; ++i) {
    ShardJob& shard = shards[i - 1];
    shard.index = i;
    std::string stem =
        config.scratch_dir + "/" + config.job_tag + "-shard-" +
        std::to_string(i) + "of" + std::to_string(n);
    shard.artifact_path = stem + ".json";
    shard.log_path = stem + ".log";
    shard.argv = {config.worker_binary, "--shard",
                  std::to_string(i) + "/" + std::to_string(n), "--out",
                  shard.artifact_path};
    shard.argv.insert(shard.argv.end(), spec_args.begin(), spec_args.end());
  }

  DispatchOutcome out;
  support::ProgressMeter meter(config.job_tag + " shards", n);
  for (ShardJob& shard : shards) {
    spawn_shard(shard, config.worker_timeout_ms);
    out.workers_spawned++;
  }
  if (config.kill_shard >= 1 && config.kill_shard <= n) {
    ::kill(shards[config.kill_shard - 1].pid, SIGKILL);
  }

  std::vector<eval::ShardBundle> bundles(n);
  for (ShardJob& shard : shards) {
    for (;;) {
      std::string reason = await_shard(shard);
      if (reason.empty()) {
        try {
          bundles[shard.index - 1] =
              eval::load_shard_bundle(shard.artifact_path);
          shard.done = true;
          break;
        } catch (const std::runtime_error& e) {
          reason = std::string("artifact unloadable: ") + e.what();
        }
      }
      if (shard.attempts > config.worker_retries) {
        fail(config.job_tag,
             "shard " + std::to_string(shard.index) + "/" +
                 std::to_string(n) + " failed after " +
                 std::to_string(shard.attempts) + " attempt(s): " + reason +
                 " (worker log: " + shard.log_path + ")");
      }
      spawn_shard(shard, config.worker_timeout_ms);
      out.workers_spawned++;
      out.worker_retries++;
    }
    meter.tick();
  }

  std::vector<eval::MergedCampaign> merged = eval::merge_shard_bundles(bundles);
  std::vector<eval::MergedFaultCampaign> fault_merged =
      eval::merge_fault_bundles(bundles);
  out.report = eval::render_merged_report(merged, fault_merged);

  for (const ShardJob& shard : shards) {
    std::remove(shard.artifact_path.c_str());
    std::remove(shard.log_path.c_str());
  }
  return out;
}

}  // namespace

DispatchOutcome dispatch_campaign(const eval::CampaignSpec& spec,
                                  const DispatcherConfig& config) {
  std::vector<std::string> diags = eval::validate_campaign_spec(spec);
  if (!diags.empty()) fail(config.job_tag, diags.front());
  if (spec.kind == eval::CampaignKind::kSpec) return run_spec_job(spec);
  try {
    return run_shard_job(spec, config);
  } catch (const eval::ArtifactWriteError& e) {
    fail(config.job_tag, e.what());
  }
}

}  // namespace serve
