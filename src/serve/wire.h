// Wire protocol of the campaign service: length-prefixed JSON frames over a
// stream socket (TCP on 127.0.0.1 or a unix-domain socket), with the
// campaign request/response envelopes serialized through support/json_io —
// the same strict, byte-stable codec the shard artifacts use.
//
// Frame layout: a 4-byte big-endian unsigned payload length followed by
// exactly that many payload bytes. The reader enforces a caller-chosen
// payload cap, so an oversized or garbage length prefix is rejected with a
// diagnostic before any allocation grows past the cap — a malformed client
// can never wedge or OOM the daemon.
//
// Endpoint grammar (shared by `--serve` and `--dispatch`):
//   "9000"            TCP on 127.0.0.1:9000 ("0" binds an ephemeral port)
//   "host:9000"       TCP, host resolved via getaddrinfo (connect only)
//   anything else     unix-domain socket path
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "eval/campaign_spec.h"

namespace serve {

/// Protocol failures: truncated or oversized frames, malformed envelopes,
/// socket errors. Connection handlers catch this, answer with an error
/// response when possible, and keep serving.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes one frame (4-byte big-endian length + payload). Throws WireError
/// on socket errors or payloads past 2^32-1 bytes; a peer that hung up is
/// an error, never a SIGPIPE.
void write_frame(int fd, const std::string& payload);

/// Reads one frame into `*payload`. Returns false on clean EOF before the
/// first length byte (peer closed between frames); throws WireError on a
/// length past `max_payload`, mid-frame EOF, or socket errors.
[[nodiscard]] bool read_frame(int fd, size_t max_payload,
                              std::string* payload);

/// Listening socket for the daemon. `target` follows the endpoint grammar
/// above (the host form is connect-only; a listener binds 127.0.0.1). The
/// unix path is unlinked on close.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; throws WireError naming the endpoint on failure.
  [[nodiscard]] static Listener bind_and_listen(const std::string& target);

  /// Blocks for one connection; returns -1 once the listener is closed.
  [[nodiscard]] int accept_connection();

  /// Closes the socket (unblocking accept_connection) and removes the unix
  /// socket path. Idempotent.
  void close_listener();

  /// The endpoint clients should dial: the actual port for TCP (resolving
  /// a "0" bind), the path for unix sockets.
  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }

 private:
  int fd_ = -1;
  std::string endpoint_;
  std::string unlink_path_;  // non-empty for unix sockets
};

/// Connects to a serving endpoint; throws WireError naming the target on
/// failure. The caller owns closing the returned fd.
[[nodiscard]] int connect_endpoint(const std::string& target);

/// One campaign request: the spec plus dispatch knobs. The knobs are
/// deliberately not part of the result-cache key — they cannot change the
/// report, only how it is computed.
struct CampaignRequest {
  eval::CampaignSpec spec;
  /// Shard workers to fan out to; 0 takes the daemon's default.
  unsigned workers = 0;
  /// False bypasses the fingerprint cache (the request recomputes even on
  /// a hit; the fresh result still populates the cache).
  bool use_cache = true;
  /// Robustness knob: 1-based shard whose first worker attempt is killed
  /// mid-run, forcing the retry path (0 = off). The final report must be
  /// byte-identical anyway — CI dispatches with this set and `cmp`s.
  unsigned kill_shard = 0;

  friend bool operator==(const CampaignRequest&,
                         const CampaignRequest&) = default;
};

/// The daemon's answer. `ok` false carries only `error`; success carries
/// the report body (byte-identical to the single-process run minus its two
/// header lines) plus the cache/fan-out telemetry the client prints to
/// stderr.
struct CampaignResponse {
  bool ok = false;
  std::string error;
  std::string fingerprint;
  bool cache_hit = false;
  uint64_t workers_spawned = 0;
  uint64_t worker_retries = 0;
  std::string report;

  friend bool operator==(const CampaignResponse&,
                         const CampaignResponse&) = default;
};

/// Envelope round trips (strict: format tag, version, every field
/// validated; unknown fields rejected). parse throws WireError.
[[nodiscard]] std::string serialize_campaign_request(
    const CampaignRequest& req);
[[nodiscard]] CampaignRequest parse_campaign_request(
    const std::string& payload);
[[nodiscard]] std::string serialize_campaign_response(
    const CampaignResponse& resp);
[[nodiscard]] CampaignResponse parse_campaign_response(
    const std::string& payload);

}  // namespace serve
