#include "serve/wire.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/json_io.h"

namespace serve {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw WireError(message);
}

[[noreturn]] void fail_errno(const std::string& message) {
  fail(message + ": " + std::strerror(errno));
}

bool all_digits(const std::string& s) {
  return !s.empty() && s.size() <= 5 &&
         s.find_first_not_of("0123456789") == std::string::npos;
}

/// Sends all of `data`; MSG_NOSIGNAL so a vanished peer is an error return,
/// never a process-killing SIGPIPE.
void send_all(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) fail_errno("wire: send failed");
    p += n;
    len -= static_cast<size_t>(n);
  }
}

/// Receives exactly `len` bytes. Returns false on EOF at the first byte
/// when `eof_ok`; throws on mid-buffer EOF or errors.
bool recv_all(int fd, void* data, size_t len, bool eof_ok) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) fail_errno("wire: recv failed");
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      fail("wire: connection closed mid-frame (got " + std::to_string(got) +
           " of " + std::to_string(len) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

struct Endpoint {
  bool is_tcp = false;
  std::string host;  // connect only; listeners bind 127.0.0.1
  uint16_t port = 0;
  std::string path;  // unix socket
};

/// See the endpoint grammar in wire.h. `for_listen` rejects the host:port
/// form (the daemon only binds loopback).
Endpoint parse_endpoint(const std::string& target, bool for_listen) {
  Endpoint ep;
  if (all_digits(target)) {
    unsigned long port = std::strtoul(target.c_str(), nullptr, 10);
    if (port > 65535) fail("wire: port " + target + " out of range");
    ep.is_tcp = true;
    ep.host = "127.0.0.1";
    ep.port = static_cast<uint16_t>(port);
    return ep;
  }
  size_t colon = target.rfind(':');
  if (colon != std::string::npos &&
      target.find('/') == std::string::npos &&
      all_digits(target.substr(colon + 1))) {
    if (for_listen) {
      fail("wire: a listener binds 127.0.0.1 — pass a bare port (or a unix "
           "socket path), not '" + target + "'");
    }
    unsigned long port = std::strtoul(target.c_str() + colon + 1, nullptr, 10);
    if (port == 0 || port > 65535) {
      fail("wire: port in '" + target + "' out of range");
    }
    ep.is_tcp = true;
    ep.host = target.substr(0, colon);
    ep.port = static_cast<uint16_t>(port);
    return ep;
  }
  if (target.empty()) fail("wire: empty endpoint");
  ep.path = target;
  return ep;
}

int make_unix_socket(const std::string& path, sockaddr_un* addr) {
  if (path.size() >= sizeof(addr->sun_path)) {
    fail("wire: unix socket path too long: " + path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("wire: cannot create unix socket");
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return fd;
}

}  // namespace

void write_frame(int fd, const std::string& payload) {
  if (payload.size() > 0xffffffffULL) fail("wire: frame too large");
  unsigned char header[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(len >> 24);
  header[1] = static_cast<unsigned char>(len >> 16);
  header[2] = static_cast<unsigned char>(len >> 8);
  header[3] = static_cast<unsigned char>(len);
  send_all(fd, header, sizeof(header));
  send_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, size_t max_payload, std::string* payload) {
  unsigned char header[4];
  if (!recv_all(fd, header, sizeof(header), /*eof_ok=*/true)) return false;
  uint32_t len = (static_cast<uint32_t>(header[0]) << 24) |
                 (static_cast<uint32_t>(header[1]) << 16) |
                 (static_cast<uint32_t>(header[2]) << 8) |
                 static_cast<uint32_t>(header[3]);
  if (len > max_payload) {
    fail("wire: frame of " + std::to_string(len) +
         " bytes exceeds the limit of " + std::to_string(max_payload));
  }
  payload->resize(len);
  if (len > 0) recv_all(fd, payload->data(), len, /*eof_ok=*/false);
  return true;
}

Listener::~Listener() { close_listener(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      endpoint_(std::move(other.endpoint_)),
      unlink_path_(std::move(other.unlink_path_)) {
  other.fd_ = -1;
  other.unlink_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close_listener();
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    unlink_path_ = std::move(other.unlink_path_);
    other.fd_ = -1;
    other.unlink_path_.clear();
  }
  return *this;
}

Listener Listener::bind_and_listen(const std::string& target) {
  Endpoint ep = parse_endpoint(target, /*for_listen=*/true);
  Listener l;
  if (ep.is_tcp) {
    l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (l.fd_ < 0) fail_errno("wire: cannot create socket");
    int one = 1;
    ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int err = errno;
      l.close_listener();
      fail("wire: cannot bind 127.0.0.1:" + std::to_string(ep.port) + ": " +
           std::strerror(err));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    l.endpoint_ = std::to_string(ntohs(addr.sin_port));
  } else {
    sockaddr_un addr;
    l.fd_ = make_unix_socket(ep.path, &addr);
    // A stale socket file from a dead daemon blocks bind; remove it (a
    // *live* daemon would still win the race on listen, and two daemons on
    // one path is operator error either way).
    ::unlink(ep.path.c_str());
    if (::bind(l.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int err = errno;
      l.close_listener();
      fail("wire: cannot bind unix socket '" + ep.path + "': " +
           std::strerror(err));
    }
    l.unlink_path_ = ep.path;
    l.endpoint_ = ep.path;
  }
  if (::listen(l.fd_, 16) < 0) {
    int err = errno;
    l.close_listener();
    fail("wire: listen failed: " + std::string(std::strerror(err)));
  }
  return l;
}

int Listener::accept_connection() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;  // closed (or unrecoverable) — the accept loop exits
  }
}

void Listener::close_listener() {
  if (fd_ >= 0) {
    // shutdown() unblocks a concurrent accept(); close alone may not.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
  if (!unlink_path_.empty()) {
    ::unlink(unlink_path_.c_str());
    unlink_path_.clear();
  }
}

int connect_endpoint(const std::string& target) {
  Endpoint ep = parse_endpoint(target, /*for_listen=*/false);
  if (!ep.is_tcp) {
    sockaddr_un addr;
    int fd = make_unix_socket(ep.path, &addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int err = errno;
      ::close(fd);
      fail("wire: cannot connect to unix socket '" + ep.path + "': " +
           std::strerror(err));
    }
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string port_text = std::to_string(ep.port);
  int rc = ::getaddrinfo(ep.host.c_str(), port_text.c_str(), &hints, &res);
  if (rc != 0) {
    fail("wire: cannot resolve '" + ep.host + "': " + gai_strerror(rc));
  }
  int fd = -1;
  std::string err_text = "no addresses";
  for (addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      err_text = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    err_text = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    fail("wire: cannot connect to " + ep.host + ":" + port_text + ": " +
         err_text);
  }
  return fd;
}

namespace {

constexpr const char* kRequestTag = "devil-repro-campaign-request";
constexpr const char* kResponseTag = "devil-repro-campaign-response";

const support::JsonValue& require(const support::JsonValue& v,
                                  const char* key, const std::string& ctx) {
  const support::JsonValue* f = v.find(key);
  if (!f) fail(ctx + ": missing field '" + key + "'");
  return *f;
}

uint64_t require_u64(const support::JsonValue& v, const char* key,
                     const std::string& ctx, uint64_t max) {
  int64_t raw = require(v, key, ctx).as_int();
  if (raw < 0 || static_cast<uint64_t>(raw) > max) {
    fail(ctx + ": field '" + key + "' out of range (0-" +
         std::to_string(max) + "), got " + std::to_string(raw));
  }
  return static_cast<uint64_t>(raw);
}

void check_envelope(const support::JsonValue& v, const char* tag,
                    const std::string& ctx,
                    std::initializer_list<const char*> known) {
  if (v.kind() != support::JsonValue::Kind::kObject) {
    fail(ctx + ": payload must be a JSON object, got " +
         support::json_kind_name(v.kind()));
  }
  const std::string& format = require(v, "format", ctx).as_string();
  if (format != tag) {
    fail(ctx + ": format tag is '" + format + "', expected '" + tag + "'");
  }
  int64_t version = require(v, "version", ctx).as_int();
  if (version != 1) {
    fail(ctx + ": unsupported version " + std::to_string(version));
  }
  for (const auto& [key, value] : v.members()) {
    (void)value;
    bool ok = key == "format" || key == "version";
    for (const char* k : known) ok |= key == k;
    if (!ok) fail(ctx + ": unknown field '" + key + "'");
  }
}

support::JsonValue parse_payload(const std::string& payload,
                                 const std::string& ctx) {
  try {
    return support::parse_json(payload);
  } catch (const support::JsonError& e) {
    fail(ctx + ": " + e.what());
  }
}

}  // namespace

std::string serialize_campaign_request(const CampaignRequest& req) {
  support::JsonValue v = support::JsonValue::object();
  v.set("format", kRequestTag);
  v.set("version", 1);
  v.set("spec", eval::campaign_spec_to_json(req.spec));
  v.set("workers", static_cast<uint64_t>(req.workers));
  v.set("cache", req.use_cache);
  v.set("kill_shard", static_cast<uint64_t>(req.kill_shard));
  return support::to_json(v);
}

CampaignRequest parse_campaign_request(const std::string& payload) {
  const std::string ctx = "campaign request";
  support::JsonValue v = parse_payload(payload, ctx);
  try {
    check_envelope(v, kRequestTag, ctx,
                   {"spec", "workers", "cache", "kill_shard"});
    CampaignRequest req;
    req.spec = eval::campaign_spec_from_json(require(v, "spec", ctx),
                                             ctx + " spec");
    req.workers = static_cast<unsigned>(require_u64(v, "workers", ctx, 999));
    req.use_cache = require(v, "cache", ctx).as_bool();
    req.kill_shard =
        static_cast<unsigned>(require_u64(v, "kill_shard", ctx, 999));
    return req;
  } catch (const WireError&) {
    throw;
  } catch (const std::runtime_error& e) {
    fail(e.what());  // JsonError / spec validation → protocol error
  }
}

std::string serialize_campaign_response(const CampaignResponse& resp) {
  support::JsonValue v = support::JsonValue::object();
  v.set("format", kResponseTag);
  v.set("version", 1);
  v.set("ok", resp.ok);
  v.set("error", resp.error);
  v.set("fingerprint", resp.fingerprint);
  v.set("cache_hit", resp.cache_hit);
  v.set("workers_spawned", resp.workers_spawned);
  v.set("worker_retries", resp.worker_retries);
  v.set("report", resp.report);
  return support::to_json(v);
}

CampaignResponse parse_campaign_response(const std::string& payload) {
  const std::string ctx = "campaign response";
  support::JsonValue v = parse_payload(payload, ctx);
  try {
    check_envelope(v, kResponseTag, ctx,
                   {"ok", "error", "fingerprint", "cache_hit",
                    "workers_spawned", "worker_retries", "report"});
    CampaignResponse resp;
    resp.ok = require(v, "ok", ctx).as_bool();
    resp.error = require(v, "error", ctx).as_string();
    resp.fingerprint = require(v, "fingerprint", ctx).as_string();
    resp.cache_hit = require(v, "cache_hit", ctx).as_bool();
    resp.workers_spawned =
        require_u64(v, "workers_spawned", ctx, UINT64_MAX / 2);
    resp.worker_retries =
        require_u64(v, "worker_retries", ctx, UINT64_MAX / 2);
    resp.report = require(v, "report", ctx).as_string();
    return resp;
  } catch (const WireError&) {
    throw;
  } catch (const std::runtime_error& e) {
    fail(e.what());
  }
}

}  // namespace serve
