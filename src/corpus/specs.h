// The five Devil specifications of the paper's Table 2.
//
// The busmouse specification is the paper's Fig. 3, verbatim modulo
// whitespace. The other four are reconstructions at the scale the paper
// reports (Table 2 line counts) targeting the same controllers; the paper's
// own specs were never published alongside the report, so these are written
// from the controllers' public register maps.
#pragma once

#include <string>
#include <vector>

namespace corpus {

struct SpecEntry {
  std::string name;        // Table 2 row label
  std::string file;        // pseudo filename (becomes the debug __FILE__ tag)
  std::string text;
};

[[nodiscard]] const std::string& busmouse_spec();
[[nodiscard]] const std::string& ide_spec();
[[nodiscard]] const std::string& pci_busmaster_spec();
[[nodiscard]] const std::string& ne2000_spec();
[[nodiscard]] const std::string& permedia2_spec();

/// All five, in Table 2 order.
[[nodiscard]] const std::vector<SpecEntry>& all_specs();

}  // namespace corpus
