#include "corpus/smoke_drivers.h"

namespace corpus {

const std::string& cdevil_ne2000_driver() {
  static const std::string src = R"(
/* CDevil smoke driver for the NE2000 specification. */

int nic_boot() {
  int isr;
  int addr0;
  devil_init(0x300, 0x310, 0x31f);

  /* Pulse the reset port and wait for ISR.RST (bit 7). */
  dil_val(get_reset_byte());
  isr = dil_val(get_int_status());
  if ((isr & 0x80) == 0) {
    panic("ne2000: reset did not complete");
  }

  /* Page 0 receive/transmit configuration. */
  set_page_start(mk_page_start(0x40));
  set_page_stop(mk_page_stop(0x80));
  set_boundary(mk_boundary(0x40));
  set_rx_config(mk_rx_config(0x04));
  set_tx_config(mk_tx_config(0x00));
  set_data_config(mk_data_config(0x09));
  set_int_mask(mk_int_mask(0x3f));

  /* Station address lives in page 1; the pre-actions switch pages. */
  set_staddr0(mk_staddr0(0x52));
  set_staddr1(mk_staddr1(0x54));
  set_staddr2(mk_staddr2(0x00));
  set_current_page(mk_current_page(0x40));

  /* Start the NIC and verify ISR.RST cleared. */
  set_run_state(NIC_START);
  isr = dil_val(get_int_status());
  if (isr & 0x80) {
    panic("ne2000: NIC did not start");
  }

  addr0 = dil_val(get_staddr0());
  if (addr0 != 0x52) {
    panic("ne2000: station address readback mismatch");
  }
  return (dil_val(get_boundary()) << 8) + addr0 + 1000;
}
)";
  return src;
}

const std::string& cdevil_pci_driver() {
  static const std::string src = R"(
/* CDevil smoke driver for the PIIX bus-master specification. */

int bm_boot() {
  int prd;
  devil_init(0xc000, 0xc002, 0xc004);

  /* The PRD table pointer keeps only its dword-aligned bits. */
  set_prd_table(mk_prd_table(0x123456));
  prd = dil_val(get_prd_table());
  if (prd != 0x123456) {
    panic("piix-bm: PRD pointer readback mismatch");
  }

  /* Start a device-to-memory transfer and check the engine went active. */
  set_bm_dir(BM_FROM_DEVICE);
  set_bm_start(BM_START);
  if (dil_eq(get_bm_active(), BM_IDLE)) {
    panic("piix-bm: engine did not start");
  }

  /* Stop it again. */
  set_bm_start(BM_STOP);
  if (dil_eq(get_bm_active(), BM_ACTIVE)) {
    panic("piix-bm: engine did not stop");
  }
  if (dil_eq(get_bm_error(), BM_ERROR)) {
    panic("piix-bm: error bit set after clean transfer");
  }
  return prd + 2000;
}
)";
  return src;
}

const std::string& cdevil_permedia_driver() {
  static const std::string src = R"(
/* CDevil smoke driver for the Permedia 2 specification. */

int gfx_boot() {
  int slots;
  devil_init(0xd000);

  if (dil_eq(get_reset_state(), RESET_BUSY)) {
    panic("permedia2: stuck in reset");
  }

  /* Program a display mode. */
  set_fb_offset(mk_fb_offset(0x100000));
  set_stride_words(mk_stride_words(640));
  set_htotal_pixels(mk_htotal_pixels(800));
  set_vtotal_lines(mk_vtotal_lines(525));
  set_hsync_pixels(mk_hsync_pixels(96));
  set_vsync_lines(mk_vsync_lines(2));
  set_write_enable(FB_WRITE_ON);

  /* The FIFO must report space for further commands. */
  slots = dil_val(get_free_slots());
  if (slots <= 0) {
    panic("permedia2: command FIFO never drains");
  }

  /* Sync handshake: write a tag, read it back. */
  set_sync_value(mk_sync_value(0xd1e5e1));
  if (dil_val(get_sync_value()) != 0xd1e5e1) {
    panic("permedia2: sync tag mismatch");
  }
  return slots + dil_val(get_stride_words()) + 3000;
}
)";
  return src;
}

}  // namespace corpus
