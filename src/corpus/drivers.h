// MiniC driver sources for the mutation campaigns and examples.
//
// Two IDE drivers implement the same boot protocol (probe, IDENTIFY, read
// the partition table, read the filesystem superblock):
//  - `c_ide_driver()`: classic Linux style — macros and raw inb/outb; the
//    hardware operating code is tagged with /* MUT_BEGIN */ .. /* MUT_END */
//    exactly as the paper tags the regions it mutates (§3.3);
//  - `cdevil_ide_driver()`: the CDevil glue that calls generated stubs; it
//    must be concatenated after the stubs produced from `corpus::ide_spec()`.
//
// Entry contract (shared with eval::BootHarness): `int ide_boot()` panics on
// a detected failure ("kernel halts and prints a panic message"), and
// otherwise returns a positive fingerprint computed from what it read; a
// wrong fingerprint with a completed boot is the paper's "damaged boot".
#pragma once

#include <string>
#include <vector>

namespace corpus {

[[nodiscard]] const std::string& c_ide_driver();
[[nodiscard]] const std::string& cdevil_ide_driver();

[[nodiscard]] const std::string& c_busmouse_driver();
[[nodiscard]] const std::string& cdevil_busmouse_driver();

/// Interrupt-driven variants for the event-fault campaigns (the bindings
/// with an IRQ line: IDE on 6, busmouse on 5). Each registers a handler via
/// request_irq before touching the device, waits on handler-set state
/// instead of pure polling, and panics "lost interrupt" on timeout. The
/// CDevil variants open their handlers with the 8259 in-service guard
/// (`inb(0x20)`): a spurious interrupt never latches its in-service bit, so
/// the guard's Devil assertion is what separates CDevil from classic C in
/// the event-fault tables.
[[nodiscard]] const std::string& c_ide_irq_driver();
[[nodiscard]] const std::string& cdevil_ide_irq_driver();
[[nodiscard]] const std::string& c_busmouse_irq_driver();
[[nodiscard]] const std::string& cdevil_busmouse_irq_driver();

/// Entry-point names.
inline constexpr const char* kIdeEntry = "ide_boot";
inline constexpr const char* kMouseEntry = "mouse_boot";
inline constexpr const char* kIdeIrqEntry = "ide_irq_boot";
inline constexpr const char* kMouseIrqEntry = "mouse_irq_boot";

/// One device's pair of campaign drivers for the Tables 3/4 evaluation:
/// the classic C driver and the CDevil glue, plus the Devil spec whose
/// generated stubs the CDevil driver is concatenated after. `device`
/// matches the standard eval binding names ("ide", "busmouse").
struct CampaignDrivers {
  const char* device;
  const char* spec_file;  // name for the generated stubs (__FILE__)
  const std::string& (*spec)();
  const std::string& (*c_driver)();
  const std::string& (*cdevil_driver)();
  const char* entry;
  /// Fraction of generated mutants the evaluation boots. The IDE corpus
  /// follows the paper's 25% sample (§4.2, experiments cost 2 minutes
  /// each); the busmouse corpus is small enough to enumerate fully.
  unsigned sample_percent;
};

/// Every device with a full mutation-campaign corpus, in report order.
[[nodiscard]] const std::vector<CampaignDrivers>& campaign_drivers();

/// The interrupt-driven corpora, keyed to the event-driven eval bindings
/// ("ide-irq", "busmouse-irq"). Kept separate from campaign_drivers() so the
/// polled mutation tables are unchanged; the fault-campaign CLI iterates
/// both lists.
[[nodiscard]] const std::vector<CampaignDrivers>& irq_campaign_drivers();

}  // namespace corpus
