// CDevil smoke drivers for the non-IDE specifications.
//
// The paper's driver campaign is IDE-only, but each of the five Table 2
// specifications should be usable end to end: these drivers exercise the
// generated stubs against the shallow device models (probe-style init and a
// readback), completing the spec -> stubs -> driver -> device loop for
// every row of Table 2.
#pragma once

#include <string>

namespace corpus {

/// NE2000: reset the NIC, program page-0 config, write the station address
/// via page 1, start it, and fingerprint the readback.
/// Entry: `int nic_boot()` (positive fingerprint, panics on failure).
[[nodiscard]] const std::string& cdevil_ne2000_driver();

/// PIIX bus master: program the PRD pointer, start/stop a transfer, check
/// the status bits. Entry: `int bm_boot()`.
[[nodiscard]] const std::string& cdevil_pci_driver();

/// Permedia 2: reset the chip, program a mode, wait for FIFO space, verify
/// via a sync tag. Entry: `int gfx_boot()`.
[[nodiscard]] const std::string& cdevil_permedia_driver();

}  // namespace corpus
