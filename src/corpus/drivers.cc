#include "corpus/drivers.h"

#include "corpus/specs.h"

namespace corpus {

const std::vector<CampaignDrivers>& campaign_drivers() {
  static const std::vector<CampaignDrivers> cases = {
      {"ide", "ide.dil", &ide_spec, &c_ide_driver, &cdevil_ide_driver,
       kIdeEntry, 25},
      {"busmouse", "busmouse.dil", &busmouse_spec, &c_busmouse_driver,
       &cdevil_busmouse_driver, kMouseEntry, 100},
  };
  return cases;
}

const std::vector<CampaignDrivers>& irq_campaign_drivers() {
  static const std::vector<CampaignDrivers> cases = {
      {"ide-irq", "ide.dil", &ide_spec, &c_ide_irq_driver,
       &cdevil_ide_irq_driver, kIdeIrqEntry, 100},
      {"busmouse-irq", "busmouse.dil", &busmouse_spec, &c_busmouse_irq_driver,
       &cdevil_busmouse_irq_driver, kMouseIrqEntry, 100},
  };
  return cases;
}

// ---------------------------------------------------------------------------
// Classic C IDE driver (hardware operating code in the tagged region).
// ---------------------------------------------------------------------------
const std::string& c_ide_driver() {
  static const std::string src = R"(
/* Linux-style IDE disk driver, boot-time path only. */

u16 ide_ident[256];
u16 ide_buf[256];
int ide_capacity;

/* MUT_BEGIN: hardware operating code */

#define IDE_DATA     0x1f0
#define IDE_NSECTOR  0x1f2
#define IDE_SECTOR   0x1f3
#define IDE_LCYL     0x1f4
#define IDE_HCYL     0x1f5
#define IDE_SELECT   0x1f6
#define IDE_STATUS   0x1f7
#define IDE_COMMAND  0x1f7

#define BUSY_STAT    0x80
#define READY_STAT   0x40
#define DRQ_STAT     0x08
#define BAD_STAT     0x21

#define WIN_READ     0x20
#define WIN_SPECIFY  0x91
#define WIN_IDENTIFY 0xec

#define ATA_LBA      0xe0

void ide_select_master() {
  outb(ATA_LBA, IDE_SELECT);
}

void ide_wait_nobusy() {
  while (inb(IDE_STATUS) & BUSY_STAT) {
  }
}

int ide_wait_drq() {
  u8 stat;
  stat = inb(IDE_STATUS);
  while ((stat & DRQ_STAT) == 0) {
    if (stat & BAD_STAT) { return 0 - 1; }
    stat = inb(IDE_STATUS);
  }
  return 0;
}

int ide_probe() {
  u8 stat;
  ide_select_master();
  ide_wait_nobusy();
  stat = inb(IDE_STATUS);
  if ((stat & READY_STAT) == 0) { return 0 - 1; }
  outb(WIN_SPECIFY, IDE_COMMAND);
  ide_wait_nobusy();
  stat = inb(IDE_STATUS);
  if (stat & BAD_STAT) { return 0 - 1; }
  return 0;
}

int ide_identify() {
  int i;
  outb(WIN_IDENTIFY, IDE_COMMAND);
  ide_wait_nobusy();
  if (ide_wait_drq() != 0) { return 0 - 1; }
  for (i = 0; i < 256; i++) {
    ide_ident[i] = inw(IDE_DATA);
  }
  return 0;
}

int ide_read_sector(int lba) {
  int i;
  outb(1, IDE_NSECTOR);
  outb(lba & 0xff, IDE_SECTOR);
  outb((lba >> 8) & 0xff, IDE_LCYL);
  outb((lba >> 16) & 0xff, IDE_HCYL);
  outb(ATA_LBA | ((lba >> 24) & 0x0f), IDE_SELECT);
  outb(WIN_READ, IDE_COMMAND);
  ide_wait_nobusy();
  if (ide_wait_drq() != 0) { return 0 - 1; }
  for (i = 0; i < 256; i++) {
    ide_buf[i] = inw(IDE_DATA);
  }
  return 0;
}

/* MUT_END */

/* Boot-time glue: probe the drive, read the partition table, mount root. */

#define MBR_MAGIC     0xaa55
#define PART_LBA_WORD 227
#define FS_MAGIC      0xef53

int ide_boot() {
  int part_start;
  int fs_size;
  int fingerprint;
  if (ide_probe() != 0) {
    panic("ide: drive not ready at boot");
  }
  if (ide_identify() != 0) {
    panic("ide: identify failed");
  }
  ide_capacity = ide_ident[60] | (ide_ident[61] << 16);
  if (ide_capacity <= 0) {
    panic("ide: bogus drive capacity");
  }
  if (ide_read_sector(0) != 0) {
    panic("ide: cannot read partition table");
  }
  if (ide_buf[255] != MBR_MAGIC) {
    panic("ide: bad partition table signature");
  }
  part_start = ide_buf[PART_LBA_WORD] | (ide_buf[PART_LBA_WORD + 1] << 16);
  if (part_start <= 0 || part_start >= ide_capacity) {
    panic("ide: implausible partition start");
  }
  if (ide_read_sector(part_start) != 0) {
    panic("ide: cannot read superblock");
  }
  if (ide_buf[0] != FS_MAGIC) {
    panic("VFS: unable to mount root fs");
  }
  fs_size = ide_buf[2] | (ide_buf[3] << 16);
  fingerprint = part_start * 65536 + (ide_capacity & 0xffff) + fs_size;
  return fingerprint;
}
)";
  return src;
}

// ---------------------------------------------------------------------------
// CDevil IDE driver (concatenate after the generated ide stubs).
// ---------------------------------------------------------------------------
const std::string& cdevil_ide_driver() {
  static const std::string src = R"(
/* CDevil glue for the Devil re-engineered IDE driver. */

#define SECTOR_WORDS 256

u16 ide_ident[256];
u16 ide_buf[256];
int ide_capacity;

/* MUT_BEGIN: CDevil call sites */

#define STATUS_OK    0
#define STATUS_ERROR 1
#define STATUS_WERR  2
#define IDE_OK       0
#define IDE_FAIL     0 - 1

int ide_end_status() {
  if (dil_eq(get_Err(), STAT_ERR)) { return STATUS_ERROR; }
  if (dil_eq(get_Werr(), WERR_SET)) { return STATUS_WERR; }
  return STATUS_OK;
}

void ide_wait_nobusy() {
  while (dil_eq(get_Busy(), BUSY)) {
  }
}

int ide_wait_drq() {
  while (dil_eq(get_Drq(), DATA_IDLE)) {
    if (dil_eq(get_Err(), STAT_ERR)) { return IDE_FAIL; }
  }
  return IDE_OK;
}

int ide_probe() {
  set_Drive(MASTER);
  set_LbaMode(LBA_ADDRESSING);
  ide_wait_nobusy();
  if (dil_eq(get_Ready(), DRIVE_NOTREADY)) { return IDE_FAIL; }
  set_Command(WIN_SPECIFY);
  ide_wait_nobusy();
  switch (ide_end_status()) {
    case STATUS_OK:
      break;
    case STATUS_ERROR:
      printk("ide: specify rejected by drive");
      return STATUS_ERROR;
    case STATUS_WERR:
      printk("ide: write fault after specify");
      return STATUS_WERR;
    default:
      break;
  }
  return IDE_OK;
}

int ide_identify() {
  int i;
  set_Command(WIN_IDENTIFY);
  ide_wait_nobusy();
  if (ide_wait_drq() != IDE_OK) { return IDE_FAIL; }
  for (i = 0; i < SECTOR_WORDS; i++) {
    ide_ident[i] = dil_val(get_Data());
  }
  switch (ide_end_status()) {
    case STATUS_OK:
      break;
    case STATUS_ERROR:
      printk("ide: identify ended with error status");
      return STATUS_ERROR;
    case STATUS_WERR:
      printk("ide: identify ended with write fault");
      return STATUS_WERR;
    default:
      break;
  }
  return IDE_OK;
}

int ide_read_sector(int lba) {
  int i;
  set_SectorCount(mk_SectorCount(1));
  set_Lba(mk_Lba(lba));
  set_Command(WIN_READ);
  ide_wait_nobusy();
  if (ide_wait_drq() != IDE_OK) { return IDE_FAIL; }
  for (i = 0; i < SECTOR_WORDS; i++) {
    ide_buf[i] = dil_val(get_Data());
  }
  switch (ide_end_status()) {
    case STATUS_OK:
      break;
    case STATUS_ERROR:
      printk("ide: read ended with error status");
      return STATUS_ERROR;
    case STATUS_WERR:
      printk("ide: write fault during read");
      return STATUS_WERR;
    default:
      break;
  }
  return IDE_OK;
}

/* MUT_END */

/* Boot-time glue: identical logic to the original driver. */

#define MBR_MAGIC     0xaa55
#define PART_LBA_WORD 227
#define FS_MAGIC      0xef53

int ide_boot() {
  int part_start;
  int fs_size;
  int fingerprint;
  devil_init(0x1f0, 0x1f0);
  if (ide_probe() != 0) {
    panic("ide: drive not ready at boot");
  }
  if (ide_identify() != 0) {
    panic("ide: identify failed");
  }
  ide_capacity = ide_ident[60] | (ide_ident[61] << 16);
  if (ide_capacity <= 0) {
    panic("ide: bogus drive capacity");
  }
  if (ide_read_sector(0) != 0) {
    panic("ide: cannot read partition table");
  }
  if (ide_buf[255] != MBR_MAGIC) {
    panic("ide: bad partition table signature");
  }
  part_start = ide_buf[PART_LBA_WORD] | (ide_buf[PART_LBA_WORD + 1] << 16);
  if (part_start <= 0 || part_start >= ide_capacity) {
    panic("ide: implausible partition start");
  }
  if (ide_read_sector(part_start) != 0) {
    panic("ide: cannot read superblock");
  }
  if (ide_buf[0] != FS_MAGIC) {
    panic("VFS: unable to mount root fs");
  }
  fs_size = ide_buf[2] | (ide_buf[3] << 16);
  fingerprint = part_start * 65536 + (ide_capacity & 0xffff) + fs_size;
  return fingerprint;
}
)";
  return src;
}

// ---------------------------------------------------------------------------
// Busmouse drivers (used by examples and tests; Fig. 1 of the paper).
// ---------------------------------------------------------------------------
const std::string& c_busmouse_driver() {
  static const std::string src = R"(
/* Classic Logitech busmouse driver (Fig. 1, left side). */

/* MUT_BEGIN */

#define MSE_DATA_PORT    0x23c
#define MSE_SIGNATURE    0x23d
#define MSE_CONTROL_PORT 0x23e
#define MSE_CONFIG_PORT  0x23f

#define MSE_READ_X_LOW   0x80
#define MSE_READ_X_HIGH  0xa0
#define MSE_READ_Y_LOW   0xc0
#define MSE_READ_Y_HIGH  0xe0

#define MSE_INT_DISABLE  0x10
#define MSE_CONFIG_BYTE  0x91

int bm_read_state() {
  u8 dx;
  u8 dy;
  u8 buttons;
  outb(MSE_READ_X_LOW, MSE_CONTROL_PORT);
  dx = inb(MSE_DATA_PORT) & 0x0f;
  outb(MSE_READ_X_HIGH, MSE_CONTROL_PORT);
  dx = dx | ((inb(MSE_DATA_PORT) & 0x0f) << 4);
  outb(MSE_READ_Y_LOW, MSE_CONTROL_PORT);
  dy = inb(MSE_DATA_PORT) & 0x0f;
  outb(MSE_READ_Y_HIGH, MSE_CONTROL_PORT);
  buttons = inb(MSE_DATA_PORT);
  dy = dy | ((buttons & 0x0f) << 4);
  buttons = (buttons >> 5) & 0x07;
  return (buttons << 16) | (dy << 8) | dx;
}

int bm_init() {
  int sig;
  outb(MSE_CONFIG_BYTE, MSE_CONFIG_PORT);
  outb(MSE_INT_DISABLE, MSE_CONTROL_PORT);
  sig = inb(MSE_SIGNATURE);
  return sig;
}

/* MUT_END */

int mouse_boot() {
  int sig;
  int state;
  sig = bm_init();
  if (sig != 0xa5) {
    panic("busmouse: bad signature");
  }
  state = bm_read_state();
  return state + 1000000;
}
)";
  return src;
}

const std::string& cdevil_busmouse_driver() {
  static const std::string src = R"(
/* CDevil glue for the Devil busmouse driver (Fig. 1, right side). */

int mouse_boot() {
  int dx;
  int dy;
  int btn;
  int state;
  devil_init(0x23c);
  /* MUT_BEGIN */
  set_config(CONFIGURATION);
  set_interrupt(DISABLE);
  set_signature(mk_signature(0x5a));
  if (dil_val(get_signature()) != 0x5a) {
    panic("busmouse: signature readback mismatch");
  }
  dx = dil_val(get_dx());
  dy = dil_val(get_dy());
  btn = dil_val(get_buttons());
  /* MUT_END */
  state = (btn << 16) | ((dy & 0xff) << 8) | (dx & 0xff);
  return state + 1000000;
}
)";
  return src;
}

// ---------------------------------------------------------------------------
// Interrupt-driven IDE driver: same boot protocol, but command completion is
// signalled on IRQ 6 and the driver waits on its handler's counter.
// ---------------------------------------------------------------------------
const std::string& c_ide_irq_driver() {
  static const std::string src = R"(
/* Linux-style IDE driver, interrupt-driven completion (IRQ 6). */

u16 ide_ident[256];
u16 ide_buf[256];
int ide_capacity;
int ide_irq_count;

/* MUT_BEGIN: hardware operating code */

#define IDE_DATA     0x1f0
#define IDE_NSECTOR  0x1f2
#define IDE_SECTOR   0x1f3
#define IDE_LCYL     0x1f4
#define IDE_HCYL     0x1f5
#define IDE_SELECT   0x1f6
#define IDE_STATUS   0x1f7
#define IDE_COMMAND  0x1f7

#define BUSY_STAT    0x80
#define READY_STAT   0x40
#define DRQ_STAT     0x08
#define BAD_STAT     0x21

#define WIN_READ     0x20
#define WIN_SPECIFY  0x91
#define WIN_IDENTIFY 0xec

#define ATA_LBA      0xe0

void ide_intr() {
  ide_irq_count = ide_irq_count + 1;
}

void ide_wait_irq(int want) {
  int tries;
  tries = 0;
  while (ide_irq_count < want) {
    if (tries >= 100) {
      panic("ide: lost interrupt");
    }
    udelay(20);
    tries = tries + 1;
  }
}

void ide_wait_nobusy() {
  while (inb(IDE_STATUS) & BUSY_STAT) {
  }
}

int ide_wait_drq() {
  u8 stat;
  stat = inb(IDE_STATUS);
  while ((stat & DRQ_STAT) == 0) {
    if (stat & BAD_STAT) { return 0 - 1; }
    stat = inb(IDE_STATUS);
  }
  return 0;
}

int ide_probe() {
  u8 stat;
  outb(ATA_LBA, IDE_SELECT);
  ide_wait_nobusy();
  stat = inb(IDE_STATUS);
  if ((stat & READY_STAT) == 0) { return 0 - 1; }
  outb(WIN_SPECIFY, IDE_COMMAND);
  ide_wait_irq(1);
  ide_wait_nobusy();
  stat = inb(IDE_STATUS);
  if (stat & BAD_STAT) { return 0 - 1; }
  return 0;
}

int ide_identify() {
  int i;
  outb(WIN_IDENTIFY, IDE_COMMAND);
  ide_wait_irq(2);
  ide_wait_nobusy();
  if (ide_wait_drq() != 0) { return 0 - 1; }
  for (i = 0; i < 256; i++) {
    ide_ident[i] = inw(IDE_DATA);
  }
  return 0;
}

int ide_read_sector(int lba, int nth) {
  int i;
  outb(1, IDE_NSECTOR);
  outb(lba & 0xff, IDE_SECTOR);
  outb((lba >> 8) & 0xff, IDE_LCYL);
  outb((lba >> 16) & 0xff, IDE_HCYL);
  outb(ATA_LBA | ((lba >> 24) & 0x0f), IDE_SELECT);
  outb(WIN_READ, IDE_COMMAND);
  ide_wait_irq(nth);
  ide_wait_nobusy();
  if (ide_wait_drq() != 0) { return 0 - 1; }
  for (i = 0; i < 256; i++) {
    ide_buf[i] = inw(IDE_DATA);
  }
  return 0;
}

/* MUT_END */

#define MBR_MAGIC     0xaa55
#define PART_LBA_WORD 227
#define FS_MAGIC      0xef53

int ide_irq_boot() {
  int part_start;
  int fs_size;
  int fingerprint;
  request_irq(6, "ide_intr");
  if (ide_probe() != 0) {
    panic("ide: drive not ready at boot");
  }
  if (ide_identify() != 0) {
    panic("ide: identify failed");
  }
  ide_capacity = ide_ident[60] | (ide_ident[61] << 16);
  if (ide_capacity <= 0) {
    panic("ide: bogus drive capacity");
  }
  if (ide_read_sector(0, 3) != 0) {
    panic("ide: cannot read partition table");
  }
  if (ide_buf[255] != MBR_MAGIC) {
    panic("ide: bad partition table signature");
  }
  part_start = ide_buf[PART_LBA_WORD] | (ide_buf[PART_LBA_WORD + 1] << 16);
  if (part_start <= 0 || part_start >= ide_capacity) {
    panic("ide: implausible partition start");
  }
  if (ide_read_sector(part_start, 4) != 0) {
    panic("ide: cannot read superblock");
  }
  if (ide_buf[0] != FS_MAGIC) {
    panic("VFS: unable to mount root fs");
  }
  fs_size = ide_buf[2] | (ide_buf[3] << 16);
  fingerprint = part_start * 65536 + (ide_capacity & 0xffff) + fs_size;
  return fingerprint;
}
)";
  return src;
}

// ---------------------------------------------------------------------------
// CDevil interrupt-driven IDE driver (concatenate after the ide stubs). The
// handler opens with the 8259 in-service guard: a spurious IRQ 6 never sets
// bit 6 of the status window at 0x20.
// ---------------------------------------------------------------------------
const std::string& cdevil_ide_irq_driver() {
  static const std::string src = R"(
/* CDevil glue for the interrupt-driven Devil IDE driver (IRQ 6). */

#define SECTOR_WORDS 256

u16 ide_ident[256];
u16 ide_buf[256];
int ide_capacity;
int ide_irq_count;

/* MUT_BEGIN: CDevil call sites */

#define IDE_OK       0
#define IDE_FAIL     0 - 1

void ide_intr() {
  if ((inb(0x20) & 64) == 0) {
    panic("Devil assertion: spurious interrupt on irq 6");
  }
  ide_irq_count = ide_irq_count + 1;
}

void ide_wait_irq(int want) {
  int tries;
  tries = 0;
  while (ide_irq_count < want) {
    if (tries >= 100) {
      panic("ide: lost interrupt");
    }
    udelay(20);
    tries = tries + 1;
  }
}

void ide_wait_nobusy() {
  while (dil_eq(get_Busy(), BUSY)) {
  }
}

int ide_wait_drq() {
  while (dil_eq(get_Drq(), DATA_IDLE)) {
    if (dil_eq(get_Err(), STAT_ERR)) { return IDE_FAIL; }
  }
  return IDE_OK;
}

int ide_probe() {
  set_Drive(MASTER);
  set_LbaMode(LBA_ADDRESSING);
  ide_wait_nobusy();
  if (dil_eq(get_Ready(), DRIVE_NOTREADY)) { return IDE_FAIL; }
  set_Command(WIN_SPECIFY);
  ide_wait_irq(1);
  ide_wait_nobusy();
  if (dil_eq(get_Err(), STAT_ERR)) { return IDE_FAIL; }
  return IDE_OK;
}

int ide_identify() {
  int i;
  set_Command(WIN_IDENTIFY);
  ide_wait_irq(2);
  ide_wait_nobusy();
  if (ide_wait_drq() != IDE_OK) { return IDE_FAIL; }
  for (i = 0; i < SECTOR_WORDS; i++) {
    ide_ident[i] = dil_val(get_Data());
  }
  return IDE_OK;
}

int ide_read_sector(int lba, int nth) {
  int i;
  set_SectorCount(mk_SectorCount(1));
  set_Lba(mk_Lba(lba));
  set_Command(WIN_READ);
  ide_wait_irq(nth);
  ide_wait_nobusy();
  if (ide_wait_drq() != IDE_OK) { return IDE_FAIL; }
  for (i = 0; i < SECTOR_WORDS; i++) {
    ide_buf[i] = dil_val(get_Data());
  }
  return IDE_OK;
}

/* MUT_END */

#define MBR_MAGIC     0xaa55
#define PART_LBA_WORD 227
#define FS_MAGIC      0xef53

int ide_irq_boot() {
  int part_start;
  int fs_size;
  int fingerprint;
  request_irq(6, "ide_intr");
  devil_init(0x1f0, 0x1f0);
  if (ide_probe() != 0) {
    panic("ide: drive not ready at boot");
  }
  if (ide_identify() != 0) {
    panic("ide: identify failed");
  }
  ide_capacity = ide_ident[60] | (ide_ident[61] << 16);
  if (ide_capacity <= 0) {
    panic("ide: bogus drive capacity");
  }
  if (ide_read_sector(0, 3) != 0) {
    panic("ide: cannot read partition table");
  }
  if (ide_buf[255] != MBR_MAGIC) {
    panic("ide: bad partition table signature");
  }
  part_start = ide_buf[PART_LBA_WORD] | (ide_buf[PART_LBA_WORD + 1] << 16);
  if (part_start <= 0 || part_start >= ide_capacity) {
    panic("ide: implausible partition start");
  }
  if (ide_read_sector(part_start, 4) != 0) {
    panic("ide: cannot read superblock");
  }
  if (ide_buf[0] != FS_MAGIC) {
    panic("VFS: unable to mount root fs");
  }
  fs_size = ide_buf[2] | (ide_buf[3] << 16);
  fingerprint = part_start * 65536 + (ide_capacity & 0xffff) + fs_size;
  return fingerprint;
}
)";
  return src;
}

// ---------------------------------------------------------------------------
// Interrupt-driven busmouse driver: motion arrives on IRQ 5 (the device
// powers on with one report pended; enabling interrupts delivers it).
// ---------------------------------------------------------------------------
const std::string& c_busmouse_irq_driver() {
  static const std::string src = R"(
/* Classic Logitech busmouse driver, interrupt-driven (IRQ 5). */

int mouse_dx;
int mouse_dy;
int mouse_buttons;
int mouse_irq_seen;

/* MUT_BEGIN */

#define MSE_DATA_PORT    0x23c
#define MSE_SIGNATURE    0x23d
#define MSE_CONTROL_PORT 0x23e
#define MSE_CONFIG_PORT  0x23f

#define MSE_READ_X_LOW   0x80
#define MSE_READ_X_HIGH  0xa0
#define MSE_READ_Y_LOW   0xc0
#define MSE_READ_Y_HIGH  0xe0

#define MSE_INT_ENABLE   0x00
#define MSE_INT_DISABLE  0x10
#define MSE_CONFIG_BYTE  0x91

void mouse_intr() {
  u8 dx;
  u8 dy;
  u8 buttons;
  outb(MSE_READ_X_LOW, MSE_CONTROL_PORT);
  dx = inb(MSE_DATA_PORT) & 0x0f;
  outb(MSE_READ_X_HIGH, MSE_CONTROL_PORT);
  dx = dx | ((inb(MSE_DATA_PORT) & 0x0f) << 4);
  outb(MSE_READ_Y_LOW, MSE_CONTROL_PORT);
  dy = inb(MSE_DATA_PORT) & 0x0f;
  outb(MSE_READ_Y_HIGH, MSE_CONTROL_PORT);
  buttons = inb(MSE_DATA_PORT);
  dy = dy | ((buttons & 0x0f) << 4);
  mouse_dx = dx;
  mouse_dy = dy;
  mouse_buttons = (buttons >> 5) & 0x07;
  mouse_irq_seen = 1;
}

int bm_init() {
  int sig;
  outb(MSE_CONFIG_BYTE, MSE_CONFIG_PORT);
  outb(MSE_INT_DISABLE, MSE_CONTROL_PORT);
  sig = inb(MSE_SIGNATURE);
  return sig;
}

/* MUT_END */

int mouse_irq_boot() {
  int sig;
  int state;
  int tries;
  request_irq(5, "mouse_intr");
  sig = bm_init();
  if (sig != 0xa5) {
    panic("busmouse: bad signature");
  }
  outb(MSE_INT_ENABLE, MSE_CONTROL_PORT);
  tries = 0;
  while (mouse_irq_seen == 0) {
    if (tries >= 100) {
      panic("busmouse: lost interrupt");
    }
    udelay(20);
    tries = tries + 1;
  }
  state = (mouse_buttons << 16) | (mouse_dy << 8) | mouse_dx;
  return state + 1000000;
}
)";
  return src;
}

// ---------------------------------------------------------------------------
// CDevil interrupt-driven busmouse driver (concatenate after the busmouse
// stubs). Handler opens with the in-service guard on bit 5 of port 0x20.
// ---------------------------------------------------------------------------
const std::string& cdevil_busmouse_irq_driver() {
  static const std::string src = R"(
/* CDevil glue for the interrupt-driven Devil busmouse driver (IRQ 5). */

int mouse_dx;
int mouse_dy;
int mouse_buttons;
int mouse_irq_seen;

void mouse_intr() {
  if ((inb(0x20) & 32) == 0) {
    panic("Devil assertion: spurious interrupt on irq 5");
  }
  mouse_dx = dil_val(get_dx());
  mouse_dy = dil_val(get_dy());
  mouse_buttons = dil_val(get_buttons());
  mouse_irq_seen = 1;
}

int mouse_irq_boot() {
  int state;
  int tries;
  request_irq(5, "mouse_intr");
  devil_init(0x23c);
  /* MUT_BEGIN */
  set_config(CONFIGURATION);
  set_signature(mk_signature(0x5a));
  if (dil_val(get_signature()) != 0x5a) {
    panic("busmouse: signature readback mismatch");
  }
  set_interrupt(ENABLE);
  /* MUT_END */
  tries = 0;
  while (mouse_irq_seen == 0) {
    if (tries >= 100) {
      panic("busmouse: lost interrupt");
    }
    udelay(20);
    tries = tries + 1;
  }
  state = (mouse_buttons << 16) | ((mouse_dy & 0xff) << 8) | (mouse_dx & 0xff);
  return state + 1000000;
}
)";
  return src;
}

}  // namespace corpus
