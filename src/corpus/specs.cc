#include "corpus/specs.h"

namespace corpus {

// ---------------------------------------------------------------------------
// Logitech busmouse — the paper's Fig. 3, verbatim.
// ---------------------------------------------------------------------------
const std::string& busmouse_spec() {
  static const std::string spec = R"(
device logitech_busmouse (base : bit[8] port @ {0..3})
{
  // Signature register (SR)
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);

  // Configuration register (CR)
  register cr = write base @ 3, mask '1001000.' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };

  // Interrupt register
  register interrupt_reg = write base @ 2, mask '000.0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };

  // Index register
  register index_reg = write base @ 2, mask '1..00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);

  register x_low  = read base @ 0, pre {index = 0}, mask '****....' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '****....' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '****....' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '...*....' : bit[8];

  variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
  variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
  variable buttons = y_high[7..5], volatile : int(3);
}
)";
  return spec;
}

// ---------------------------------------------------------------------------
// IDE disk controller (Intel PIIX4 primary channel task file).
//
// Two port parameters: the 16-bit data port and the 8-bit command-block
// ports. Status bits are exposed as tiny read-only enumerations so that
// CDevil code compares them with `dil_eq` against named constants — the
// style that gives Devil its run-time detection (paper §2.3).
// ---------------------------------------------------------------------------
const std::string& ide_spec() {
  static const std::string spec = R"(
device ide_piix4 (data : bit[16] port @ {0..0},
                  base : bit[8] port @ {1..7})
{
  // --- Data register (16-bit PIO window) ---
  register data_reg = data @ 0 : bit[16];
  variable Data = data_reg, volatile : int(16);

  // --- Error register (read) / Features register (write), base + 1 ---
  register error_reg = read base @ 1 : bit[8];
  variable ErrAmnf  = error_reg[0], volatile : { AMNF_SET  <= '1', AMNF_CLR  <= '0' };
  variable ErrTk0nf = error_reg[1], volatile : { TK0NF_SET <= '1', TK0NF_CLR <= '0' };
  variable ErrAbort = error_reg[2], volatile : { CMD_ABORTED <= '1', CMD_ACCEPTED <= '0' };
  variable ErrMcr   = error_reg[3], volatile : { MCR_SET  <= '1', MCR_CLR  <= '0' };
  variable ErrIdnf  = error_reg[4], volatile : { ID_NOT_FOUND <= '1', ID_FOUND <= '0' };
  variable ErrMc    = error_reg[5], volatile : { MC_SET   <= '1', MC_CLR   <= '0' };
  variable ErrUnc   = error_reg[6], volatile : { UNC_SET  <= '1', UNC_CLR  <= '0' };
  variable ErrBbk   = error_reg[7], volatile : { BBK_SET  <= '1', BBK_CLR  <= '0' };

  register features_reg = write base @ 1 : bit[8];
  variable Features = features_reg : int(8);

  // --- Sector count and LBA address ---
  register nsect_reg = base @ 2 : bit[8];
  variable SectorCount = nsect_reg : int(8);

  register lbal_reg = base @ 3 : bit[8];
  register lbam_reg = base @ 4 : bit[8];
  register lbah_reg = base @ 5 : bit[8];

  // --- Drive/head select, base + 6; bits 7 and 5 are wired to 1 ---
  register select_reg = base @ 6, mask '1.1.....' : bit[8];
  variable Drive = select_reg[4] : { SLAVE <=> '1', MASTER <=> '0' };
  variable LbaMode = select_reg[6] : { LBA_ADDRESSING <=> '1', CHS_ADDRESSING <=> '0' };

  // The 28-bit logical block address spans four registers; Devil's register
  // concatenation absorbs the error-prone shift/mask arithmetic that the
  // C driver performs by hand (paper 2.1, "Register concatenation").
  variable Lba = select_reg[3..0] # lbah_reg # lbam_reg # lbal_reg : int(28);

  // --- Status register (read), base + 7 ---
  register status_reg = read base @ 7 : bit[8];
  variable Err   = status_reg[0], volatile : { STAT_ERR   <= '1', STAT_OK    <= '0' };
  variable Index = status_reg[1], volatile : { IDX_SET    <= '1', IDX_CLR    <= '0' };
  variable Corr  = status_reg[2], volatile : { CORR_SET   <= '1', CORR_CLR   <= '0' };
  variable Drq   = status_reg[3], volatile : { DATA_REQ   <= '1', DATA_IDLE  <= '0' };
  variable Seek  = status_reg[4], volatile : { SEEK_DONE  <= '1', SEEK_WAIT  <= '0' };
  variable Werr  = status_reg[5], volatile : { WERR_SET   <= '1', WERR_CLR   <= '0' };
  variable Ready = status_reg[6], volatile : { DRIVE_READY <= '1', DRIVE_NOTREADY <= '0' };
  variable Busy  = status_reg[7], volatile : { BUSY <= '1', IDLE <= '0' };

  // --- Command register (write), base + 7 ---
  register command_reg = write base @ 7 : bit[8];
  variable Command = command_reg, write trigger : {
    WIN_RESTORE  => '00010000',
    WIN_READ     => '00100000',
    WIN_WRITE    => '00110000',
    WIN_SPECIFY  => '10010001',
    WIN_IDENTIFY => '11101100'
  };
}
)";
  return spec;
}

// ---------------------------------------------------------------------------
// Intel 82371FB (PIIX) IDE bus-master function, primary channel.
// ---------------------------------------------------------------------------
const std::string& pci_busmaster_spec() {
  static const std::string spec = R"(
device piix_busmaster (cmd : bit[8] port @ {0..0},
                       status : bit[8] port @ {0..0},
                       prd : bit[32] port @ {0..0})
{
  // Bus master IDE command register: bit 0 start/stop, bit 3 direction.
  register bmi_cmd = cmd @ 0, mask '****.**.' : bit[8];
  variable bm_start = bmi_cmd[0] : { BM_START => '1', BM_STOP => '0' };
  variable bm_dir = bmi_cmd[3] : { BM_FROM_DEVICE => '1', BM_TO_DEVICE => '0' };

  // Bus master IDE status register.
  register bmi_status = read status @ 0, mask '*..**...' : bit[8];
  variable bm_active = bmi_status[0], volatile : { BM_ACTIVE <= '1', BM_IDLE <= '0' };
  variable bm_error  = bmi_status[1], volatile : { BM_ERROR <= '1', BM_OK <= '0' };
  variable bm_irq    = bmi_status[2], volatile : { BM_IRQ <= '1', BM_NO_IRQ <= '0' };
  variable drv0_dma  = bmi_status[5], volatile : { DRV0_DMA <= '1', DRV0_PIO <= '0' };
  variable drv1_dma  = bmi_status[6], volatile : { DRV1_DMA <= '1', DRV1_PIO <= '0' };

  // Physical region descriptor table pointer (dword aligned).
  register prd_ptr = prd @ 0, mask '..............................00' : bit[32];
  variable prd_table = prd_ptr[31..2] : int(30);
}
)";
  return spec;
}

// ---------------------------------------------------------------------------
// NE2000 (DP8390) Ethernet controller. The page-switched register file is
// captured with pre-actions on the private page-select variable, the same
// idiom as the busmouse index register.
// ---------------------------------------------------------------------------
const std::string& ne2000_spec() {
  static const std::string spec = R"(
device ne2000 (base : bit[8] port @ {0..15},
               data : bit[16] port @ {0..0},
               rst : bit[8] port @ {0..0})
{
  // --- Command register: page select, remote op, transmit, start/stop ---
  register cr = base @ 0 : bit[8];
  private variable page = cr[7..6] : int(2);
  variable remote_op = cr[5..3] : int(3);
  variable txp = cr[2], volatile : bool;
  variable run_state = cr[1..0] : {
    NIC_HALT  <=> '00',
    NIC_STOP  <=> '01',
    NIC_START <=> '10',
    NIC_BUSY  <=> '11'
  };

  // --- Page 0: receive/transmit configuration ---
  register pstart = write base @ 1, pre {page = 0} : bit[8];
  variable page_start = pstart : int(8);

  register pstop = write base @ 2, pre {page = 0} : bit[8];
  variable page_stop = pstop : int(8);

  register bnry = base @ 3, pre {page = 0} : bit[8];
  variable boundary = bnry : int(8);

  register tpsr = write base @ 4, pre {page = 0} : bit[8];
  variable tx_page_start = tpsr : int(8);

  register tbcr0 = write base @ 5, pre {page = 0} : bit[8];
  variable tx_count_lo = tbcr0 : int(8);

  register tbcr1 = write base @ 6, pre {page = 0} : bit[8];
  variable tx_count_hi = tbcr1 : int(8);

  register isr = base @ 7, pre {page = 0} : bit[8];
  variable int_status = isr, volatile : int(8);

  register rsar0 = write base @ 8, pre {page = 0} : bit[8];
  variable remote_addr_lo = rsar0 : int(8);

  register rsar1 = write base @ 9, pre {page = 0} : bit[8];
  variable remote_addr_hi = rsar1 : int(8);

  register rbcr0 = write base @ 10, pre {page = 0} : bit[8];
  variable remote_count_lo = rbcr0 : int(8);

  register rbcr1 = write base @ 11, pre {page = 0} : bit[8];
  variable remote_count_hi = rbcr1 : int(8);

  register rcr = write base @ 12, pre {page = 0}, mask '**......' : bit[8];
  variable rx_config = rcr[5..0] : int(6);

  register tcr = write base @ 13, pre {page = 0}, mask '***.....' : bit[8];
  variable tx_config = tcr[4..0] : int(5);

  register dcr = write base @ 14, pre {page = 0}, mask '**......' : bit[8];
  variable data_config = dcr[5..0] : int(6);

  register imr = write base @ 15, pre {page = 0}, mask '*.......' : bit[8];
  variable int_mask = imr[6..0] : int(7);

  // --- Page 1: station address, current page, multicast filter ---
  register par0 = base @ 1, pre {page = 1} : bit[8];
  variable staddr0 = par0 : int(8);
  register par1 = base @ 2, pre {page = 1} : bit[8];
  variable staddr1 = par1 : int(8);
  register par2 = base @ 3, pre {page = 1} : bit[8];
  variable staddr2 = par2 : int(8);
  register par3 = base @ 4, pre {page = 1} : bit[8];
  variable staddr3 = par3 : int(8);
  register par4 = base @ 5, pre {page = 1} : bit[8];
  variable staddr4 = par4 : int(8);
  register par5 = base @ 6, pre {page = 1} : bit[8];
  variable staddr5 = par5 : int(8);

  register curr = base @ 7, pre {page = 1} : bit[8];
  variable current_page = curr : int(8);

  register mar0 = base @ 8, pre {page = 1} : bit[8];
  variable mcast0 = mar0 : int(8);
  register mar1 = base @ 9, pre {page = 1} : bit[8];
  variable mcast1 = mar1 : int(8);
  register mar2 = base @ 10, pre {page = 1} : bit[8];
  variable mcast2 = mar2 : int(8);
  register mar3 = base @ 11, pre {page = 1} : bit[8];
  variable mcast3 = mar3 : int(8);
  register mar4 = base @ 12, pre {page = 1} : bit[8];
  variable mcast4 = mar4 : int(8);
  register mar5 = base @ 13, pre {page = 1} : bit[8];
  variable mcast5 = mar5 : int(8);
  register mar6 = base @ 14, pre {page = 1} : bit[8];
  variable mcast6 = mar6 : int(8);
  register mar7 = base @ 15, pre {page = 1} : bit[8];
  variable mcast7 = mar7 : int(8);

  // --- Remote DMA data window and reset port ---
  register data_port = data @ 0 : bit[16];
  variable dma_data = data_port, volatile : int(16);

  register reset_reg = read rst @ 0 : bit[8];
  variable reset_byte = reset_reg, volatile : int(8);
}
)";
  return spec;
}

// ---------------------------------------------------------------------------
// 3Dlabs Permedia 2 graphics controller (control-space registers).
// ---------------------------------------------------------------------------
const std::string& permedia2_spec() {
  static const std::string spec = R"(
device permedia2 (ctrl : bit[32] port @ {0..15})
{
  // --- Chip reset and status ---
  register reset_status = ctrl @ 0 : bit[32];
  variable reset_state = reset_status[0], volatile : { RESET_BUSY <= '1', RESET_DONE <= '0' };
  variable reset_pad = reset_status[31..1] : int(31);

  // --- Input FIFO space ---
  register fifo_space = read ctrl @ 1, mask '****************................' : bit[32];
  variable free_slots = fifo_space[15..0], volatile : int(16);

  // --- Interrupt enable / flags ---
  register int_enable = ctrl @ 2, mask '***************************.....' : bit[32];
  variable ie_dma      = int_enable[0] : bool;
  variable ie_sync     = int_enable[1] : bool;
  variable ie_vblank   = int_enable[2] : bool;
  variable ie_error    = int_enable[3] : bool;
  variable ie_scanline = int_enable[4] : bool;

  register int_flags = ctrl @ 3, mask '***************************.....' : bit[32];
  variable if_dma      = int_flags[0], volatile : bool;
  variable if_sync     = int_flags[1], volatile : bool;
  variable if_vblank   = int_flags[2], volatile : bool;
  variable if_error    = int_flags[3], volatile : bool;
  variable if_scanline = int_flags[4], volatile : bool;

  // --- DMA engine ---
  register dma_address = ctrl @ 4 : bit[32];
  variable dma_addr = dma_address : int(32);

  register dma_count = ctrl @ 5, mask '................................' : bit[32];
  variable dma_words = dma_count[31..0], volatile : int(32);

  // --- Video timing ---
  register screen_base = ctrl @ 6 : bit[32];
  variable fb_offset = screen_base : int(32);

  register screen_stride = ctrl @ 7, mask '****************................' : bit[32];
  variable stride_words = screen_stride[15..0] : int(16);

  register h_total = ctrl @ 8, mask '****************................' : bit[32];
  variable htotal_pixels = h_total[15..0] : int(16);

  register v_total = ctrl @ 9, mask '****************................' : bit[32];
  variable vtotal_lines = v_total[15..0] : int(16);

  register h_sync = ctrl @ 10, mask '****************................' : bit[32];
  variable hsync_pixels = h_sync[15..0] : int(16);

  register v_sync = ctrl @ 11, mask '****************................' : bit[32];
  variable vsync_lines = v_sync[15..0] : int(16);

  // --- Rasteriser ---
  register fb_read_mode = ctrl @ 12 : bit[32];
  variable read_mode = fb_read_mode : int(32);

  register fb_write_mode = ctrl @ 13, mask '*******************************.' : bit[32];
  variable write_enable = fb_write_mode[0] : { FB_WRITE_ON <=> '1', FB_WRITE_OFF <=> '0' };

  register chip_config = ctrl @ 14, mask '****************................' : bit[32];
  variable agp_caps = chip_config[15..8] : int(8);
  variable bus_caps = chip_config[7..0] : int(8);

  register sync_tag = ctrl @ 15 : bit[32];
  variable sync_value = sync_tag, volatile : int(32);
}
)";
  return spec;
}

const std::vector<SpecEntry>& all_specs() {
  static const std::vector<SpecEntry> specs = {
      {"Logitech Busmouse", "busmouse.dil", busmouse_spec()},
      {"PCI Bus Master (Intel 82371FB)", "piix_bm.dil", pci_busmaster_spec()},
      {"IDE (Intel PIIX4)", "ide.dil", ide_spec()},
      {"Ethernet NE2000 (ns8390)", "ne2000.dil", ne2000_spec()},
      {"Graphic card (Permedia 2)", "permedia2.dil", permedia2_spec()},
  };
  return specs;
}

}  // namespace corpus
