// Facade over the Devil pipeline: lex -> parse -> sema -> codegen.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "devil/ast.h"
#include "devil/codegen.h"
#include "devil/sema.h"
#include "support/diagnostics.h"

namespace devil {

/// Result of compiling one specification. `spec` owns the AST; `info` holds
/// pointers into it, so keep the whole result alive while using `info`.
struct CompileResult {
  support::DiagnosticEngine diags;
  std::unique_ptr<Specification> spec;     // null on parse failure
  std::optional<DeviceInfo> info;          // nullopt on semantic errors
  std::string stubs;                       // empty unless ok()

  [[nodiscard]] bool ok() const { return info.has_value(); }
};

/// Checks `text` and, when consistent, generates stubs in `mode`.
/// `name` is used in diagnostics and as the debug __FILE__ tag.
[[nodiscard]] CompileResult compile_spec(const std::string& name,
                                         const std::string& text,
                                         CodegenMode mode);

/// Checks only (Table 2 campaign does not need codegen).
[[nodiscard]] CompileResult check_spec(const std::string& name,
                                       const std::string& text);

/// One-line inventory of a checked device (ports/registers/variables), used
/// by the figure benches and examples.
[[nodiscard]] std::string describe_device(const DeviceInfo& info);

}  // namespace devil
