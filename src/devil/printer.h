// Pretty-printer for Devil specifications: formats a parsed AST back to
// canonical concrete syntax. Supports tooling (spec_lint --format) and the
// round-trip property tests (parse(print(ast)) == ast).
#pragma once

#include <string>

#include "devil/ast.h"

namespace devil {

[[nodiscard]] std::string print_spec(const Specification& spec);

/// Individual pieces, exposed for tests.
[[nodiscard]] std::string print_type(const TypeExpr& type);
[[nodiscard]] std::string print_register(const RegisterDecl& reg);
[[nodiscard]] std::string print_variable(const VariableDecl& var);

}  // namespace devil
