#include "devil/sema.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace devil {

namespace {

int bits_needed(uint64_t max_value) {
  int n = 1;
  while (max_value >> n) ++n;
  return n;
}

std::string fmt(const char* pre, const std::string& name, const char* post) {
  return std::string(pre) + "'" + name + "'" + post;
}

}  // namespace

int type_width_bits(const TypeExpr& ty) {
  switch (ty.kind) {
    case TypeKind::kInt:
    case TypeKind::kSignedInt:
      return ty.width_bits;
    case TypeKind::kBool:
      return 1;
    case TypeKind::kEnum:
      return ty.items.empty() ? 0
                              : static_cast<int>(ty.items.front().pattern.size());
    case TypeKind::kIntSet: {
      uint64_t mx = 0;
      for (uint64_t v : ty.set_values) mx = std::max(mx, v);
      return bits_needed(mx);
    }
  }
  return 0;
}

std::optional<DeviceInfo> Sema::check(const Specification& spec) {
  DeviceInfo info;
  info.decl = &spec.device;
  int before = diags_.error_count();
  check_ports(spec.device, info);
  check_registers(spec.device, info);
  check_variables(spec.device, info);
  check_pre_actions(spec.device, info);
  check_overlap(spec.device, info);
  check_no_omission(spec.device, info);
  if (diags_.error_count() > before) return std::nullopt;
  return info;
}

void Sema::check_ports(const DeviceDecl& dev, DeviceInfo& info) {
  for (const auto& p : dev.params) {
    if (info.ports.count(p.name)) {
      diags_.error("DVL100", p.loc,
                   fmt("duplicate port parameter ", p.name, ""));
      continue;
    }
    if (p.width_bits != 8 && p.width_bits != 16 && p.width_bits != 32) {
      diags_.error("DVL101", p.loc,
                   fmt("port ", p.name, " has invalid width (must be 8, 16 or 32)"));
    }
    if (p.has_empty_range || p.offsets.empty()) {
      diags_.error("DVL102", p.loc,
                   fmt("port ", p.name, " has an empty offset range"));
    }
    std::set<uint64_t> seen_offsets;
    for (uint64_t off : p.offsets) {
      if (!seen_offsets.insert(off).second) {
        std::ostringstream os;
        os << "offset " << off << " appears twice in the range of port '"
           << p.name << "'";
        diags_.error("DVL103", p.loc, os.str());
      }
    }
    info.ports.emplace(p.name, &p);
  }
}

void Sema::check_registers(const DeviceDecl& dev, DeviceInfo& info) {
  for (const auto& r : dev.registers) {
    if (info.registers.count(r.name)) {
      diags_.error("DVL110", r.loc, fmt("duplicate register ", r.name, ""));
      continue;
    }

    RegInfo ri;
    ri.decl = &r;
    ri.access = r.access();

    if (r.size_bits <= 0 || r.size_bits > 64) {
      diags_.error("DVL111", r.loc,
                   fmt("register ", r.name, " has invalid size"));
      // Still record it with a clamped size so later checks can proceed.
    }

    bool has_read = false, has_write = false;
    for (const auto& b : r.bindings) {
      auto pit = info.ports.find(b.port.base);
      if (pit == info.ports.end()) {
        diags_.error("DVL112", b.port.loc,
                     fmt("register ", r.name, "") + " refers to unknown port '" +
                         b.port.base + "'");
        continue;
      }
      const PortParam& pp = *pit->second;
      if (!pp.allows(b.port.offset)) {
        std::ostringstream os;
        os << "offset " << b.port.offset << " of port '" << pp.name
           << "' is outside its declared offset set";
        diags_.error("DVL113", b.port.loc, os.str());
      }
      if (r.size_bits != pp.width_bits) {
        std::ostringstream os;
        os << "register '" << r.name << "' is bit[" << r.size_bits
           << "] but port '" << pp.name << "' is bit[" << pp.width_bits << "]";
        diags_.error("DVL115", r.loc, os.str());
      }
      if (can_read(b.access)) {
        if (has_read) {
          diags_.error("DVL116", b.port.loc,
                       fmt("register ", r.name, " has two read bindings"));
        }
        has_read = true;
      }
      if (can_write(b.access)) {
        if (has_write) {
          diags_.error("DVL117", b.port.loc,
                       fmt("register ", r.name, " has two write bindings"));
        }
        has_write = true;
      }
    }

    if (!r.mask.empty() &&
        static_cast<int>(r.mask.pattern.size()) != r.size_bits) {
      std::ostringstream os;
      os << "mask of register '" << r.name << "' has "
         << r.mask.pattern.size() << " bits but the register is bit["
         << r.size_bits << "]";
      diags_.error("DVL114", r.mask.loc, os.str());
    }
    ri.mask = r.mask.empty() ? std::string(static_cast<size_t>(
                                               std::max(r.size_bits, 1)),
                                           '.')
                             : r.mask.pattern;

    info.registers.emplace(r.name, std::move(ri));
  }
}

void Sema::check_variables(const DeviceDecl& dev, DeviceInfo& info) {
  int next_type_id = 1;
  std::set<std::string> enum_names;  // symbolic names must be spec-unique

  for (const auto& v : dev.variables) {
    if (info.variables.count(v.name)) {
      diags_.error("DVL120", v.loc, fmt("duplicate variable ", v.name, ""));
      continue;
    }

    VarInfo vi;
    vi.decl = &v;
    vi.type_id = next_type_id++;

    bool readable = true, writable = true;
    int total_width = 0;
    for (const auto& f : v.fragments) {
      auto rit = info.registers.find(f.reg);
      if (rit == info.registers.end()) {
        diags_.error("DVL121", f.loc,
                     fmt("variable ", v.name, "") + " refers to unknown register '" +
                         f.reg + "'");
        continue;
      }
      const RegInfo& ri = rit->second;
      int size = ri.decl->size_bits;
      int msb = f.has_range ? f.msb : size - 1;
      int lsb = f.has_range ? f.lsb : 0;
      if (msb < lsb || lsb < 0 || msb >= size) {
        std::ostringstream os;
        os << "bit range [" << f.msb << ".." << f.lsb << "] of register '"
           << f.reg << "' is outside bit[" << size << "]";
        diags_.error("DVL122", f.loc, os.str());
        continue;
      }
      for (int b = lsb; b <= msb; ++b) {
        if (ri.mask_bit(b) != '.') {
          std::ostringstream os;
          os << "variable '" << v.name << "' uses bit " << b << " of register '"
             << f.reg << "', which the mask marks irrelevant ('"
             << ri.mask_bit(b) << "')";
          diags_.error("DVL123", f.loc, os.str());
        }
      }
      total_width += msb - lsb + 1;
      readable = readable && can_read(ri.access);
      writable = writable && can_write(ri.access);
    }
    vi.width_bits = total_width;
    if (!readable && !writable) {
      diags_.error("DVL124", v.loc,
                   fmt("variable ", v.name,
                       " is neither readable nor writable through its registers"));
    }
    vi.access = readable ? (writable ? Access::kReadWrite : Access::kRead)
                         : Access::kWrite;

    // --- type checks ---
    const TypeExpr& ty = v.type;
    int ty_width = type_width_bits(ty);
    if ((ty.kind == TypeKind::kInt || ty.kind == TypeKind::kSignedInt) &&
        (ty.width_bits <= 0 || ty.width_bits > 64)) {
      diags_.error("DVL137", ty.loc,
                   fmt("variable ", v.name, " has an invalid integer width"));
    }
    if (ty.kind == TypeKind::kIntSet) {
      std::set<uint64_t> seen;
      for (uint64_t val : ty.set_values) {
        if (!seen.insert(val).second) {
          std::ostringstream os;
          os << "duplicate element " << val << " in integer-set type of '"
             << v.name << "'";
          diags_.error("DVL135", ty.loc, os.str());
        }
      }
      if (ty.set_values.empty()) {
        diags_.error("DVL136", ty.loc,
                     fmt("integer-set type of ", v.name, " is empty"));
      }
    }
    if (ty.kind == TypeKind::kEnum) {
      std::set<std::string> read_pats, write_pats;
      for (const auto& item : ty.items) {
        if (!enum_names.insert(item.name).second) {
          diags_.error("DVL133", item.loc,
                       fmt("symbolic name ", item.name,
                           " is already defined in this specification"));
        }
        for (char c : item.pattern) {
          if (c != '0' && c != '1') {
            diags_.error("DVL132", item.loc,
                         fmt("bit pattern of ", item.name,
                             " may contain only '0' and '1'"));
            break;
          }
        }
        if (static_cast<int>(item.pattern.size()) != ty_width) {
          std::ostringstream os;
          os << "bit pattern of '" << item.name << "' has "
             << item.pattern.size() << " bits; other patterns in the type have "
             << ty_width;
          diags_.error("DVL131", item.loc, os.str());
        }
        bool rd = item.dir != MappingDir::kWrite;
        bool wr = item.dir != MappingDir::kRead;
        if (rd && !read_pats.insert(item.pattern).second) {
          diags_.error("DVL134", item.loc,
                       fmt("bit pattern of ", item.name,
                           " duplicates another read mapping"));
        }
        if (wr && !write_pats.insert(item.pattern).second) {
          diags_.error("DVL139", item.loc,
                       fmt("bit pattern of ", item.name,
                           " duplicates another write mapping"));
        }
        // A mapping direction must be compatible with the variable access
        // ("a type for reading ... must be used with a readable variable").
        if (rd && !can_read(vi.access)) {
          diags_.error("DVL200", item.loc,
                       fmt("read mapping ", item.name,
                           " on a variable that is not readable"));
        }
        if (wr && !can_write(vi.access)) {
          diags_.error("DVL201", item.loc,
                       fmt("write mapping ", item.name,
                           " on a variable that is not writable"));
        }
      }
      // Exhaustiveness: when the variable is readable, every possible bit
      // pattern must have a read mapping (paper: "Read elements of a type
      // mapping must be exhaustive").
      if (can_read(vi.access) && !read_pats.empty() && ty_width > 0 &&
          ty_width <= 16) {
        uint64_t want = 1ULL << ty_width;
        if (read_pats.size() != want) {
          std::ostringstream os;
          os << "read mappings of variable '" << v.name << "' cover "
             << read_pats.size() << " of " << want << " possible patterns";
          diags_.error("DVL210", ty.loc, os.str());
        }
      }
      // A write-only or read-write enum must have at least one write item to
      // be usable for writing; require it only when the variable cannot be
      // read at all (otherwise a read-only view is legitimate).
      if (!can_read(vi.access) && write_pats.empty()) {
        diags_.error("DVL202", ty.loc,
                     fmt("variable ", v.name,
                         " is write-only but its type has no write mappings"));
      }
    }

    if (total_width != ty_width) {
      std::ostringstream os;
      os << "variable '" << v.name << "' concatenates " << total_width
         << " register bits but its type needs " << ty_width;
      diags_.error("DVL130", v.loc, os.str());
    }
    if (ty.kind == TypeKind::kIntSet && total_width > 0 && total_width <= 63) {
      for (uint64_t val : ty.set_values) {
        if (val >= (1ULL << total_width)) {
          std::ostringstream os;
          os << "set element " << val << " of variable '" << v.name
             << "' does not fit in " << total_width << " bits";
          diags_.error("DVL138", ty.loc, os.str());
        }
      }
    }

    info.variables.emplace(v.name, std::move(vi));
  }
}

void Sema::check_pre_actions(const DeviceDecl& dev, DeviceInfo& info) {
  for (const auto& r : dev.registers) {
    for (const auto& pa : r.pre_actions) {
      auto vit = info.variables.find(pa.var);
      if (vit == info.variables.end()) {
        diags_.error("DVL150", pa.loc,
                     fmt("pre-action assigns unknown variable ", pa.var, ""));
        continue;
      }
      const VarInfo& vi = vit->second;
      if (!can_write(vi.access)) {
        diags_.error("DVL151", pa.loc,
                     fmt("pre-action assigns read-only variable ", pa.var, ""));
      }
      // Value must be representable in the variable's type.
      const TypeExpr& ty = vi.decl->type;
      bool in_range = true;
      switch (ty.kind) {
        case TypeKind::kInt:
        case TypeKind::kBool:
          in_range = vi.width_bits >= 64 || pa.value < (1ULL << vi.width_bits);
          break;
        case TypeKind::kSignedInt:
          in_range = vi.width_bits >= 64 || pa.value < (1ULL << vi.width_bits);
          break;
        case TypeKind::kIntSet:
          in_range = std::find(ty.set_values.begin(), ty.set_values.end(),
                               pa.value) != ty.set_values.end();
          break;
        case TypeKind::kEnum:
          // Pre-actions use raw values; require the value to match some
          // write pattern.
          in_range = false;
          for (const auto& item : ty.items) {
            if (item.dir == MappingDir::kRead) continue;
            uint64_t pat = 0;
            for (char c : item.pattern) pat = (pat << 1) | (c == '1' ? 1 : 0);
            if (pat == pa.value) in_range = true;
          }
          break;
      }
      if (!in_range) {
        std::ostringstream os;
        os << "pre-action value " << pa.value
           << " is outside the type of variable '" << pa.var << "'";
        diags_.error("DVL152", pa.loc, os.str());
      }
    }
  }
}

void Sema::check_overlap(const DeviceDecl& dev, DeviceInfo& info) {
  // "Each port must appear only once in the register definitions, except when
  //  registers are defined using disjoint pre-actions or masks. However, a
  //  single port may be used for reading by one register and writing to
  //  another."
  struct Use {
    const RegisterDecl* reg;
    bool read;
  };
  std::map<std::pair<std::string, uint64_t>, std::vector<Use>> uses;
  for (const auto& r : dev.registers) {
    for (const auto& b : r.bindings) {
      if (!info.ports.count(b.port.base)) continue;  // already diagnosed
      auto key = std::make_pair(b.port.base, b.port.offset);
      if (can_read(b.access)) uses[key].push_back({&r, true});
      if (can_write(b.access)) uses[key].push_back({&r, false});
    }
  }

  auto pre_actions_disjoint = [](const RegisterDecl& a, const RegisterDecl& b) {
    // Disjoint if they set the same selector variable to different values.
    for (const auto& pa : a.pre_actions) {
      for (const auto& pb : b.pre_actions) {
        if (pa.var == pb.var && pa.value != pb.value) return true;
      }
    }
    return false;
  };
  auto masks_disjoint = [&](const RegisterDecl& a, const RegisterDecl& b) {
    // Disjoint if no bit is relevant ('.') in both masks.
    auto ra = info.registers.find(a.name);
    auto rb = info.registers.find(b.name);
    if (ra == info.registers.end() || rb == info.registers.end()) return false;
    if (a.size_bits != b.size_bits) return false;
    if (static_cast<int>(ra->second.mask.size()) != a.size_bits ||
        static_cast<int>(rb->second.mask.size()) != b.size_bits)
      return false;
    for (int i = 0; i < a.size_bits; ++i) {
      if (ra->second.mask_bit(i) == '.' && rb->second.mask_bit(i) == '.')
        return false;
    }
    return true;
  };

  for (const auto& [key, vec] : uses) {
    for (size_t i = 0; i < vec.size(); ++i) {
      for (size_t j = i + 1; j < vec.size(); ++j) {
        if (vec[i].reg == vec[j].reg) continue;
        if (vec[i].read != vec[j].read) continue;  // read vs write is fine
        if (pre_actions_disjoint(*vec[i].reg, *vec[j].reg)) continue;
        if (masks_disjoint(*vec[i].reg, *vec[j].reg)) continue;
        std::ostringstream os;
        os << "registers '" << vec[i].reg->name << "' and '"
           << vec[j].reg->name << "' both use port '" << key.first << "' @ "
           << key.second << " for " << (vec[i].read ? "reading" : "writing")
           << " without disjoint pre-actions or masks";
        diags_.error("DVL220", vec[j].reg->loc, os.str());
      }
    }
  }

  // "No bit of a single register can be used in the definition of two
  //  different variables."
  std::map<std::string, std::vector<std::pair<int, std::string>>> bit_owner;
  for (const auto& v : dev.variables) {
    for (const auto& f : v.fragments) {
      auto rit = info.registers.find(f.reg);
      if (rit == info.registers.end()) continue;
      int size = rit->second.decl->size_bits;
      int msb = f.has_range ? f.msb : size - 1;
      int lsb = f.has_range ? f.lsb : 0;
      if (msb < lsb || lsb < 0 || msb >= size) continue;  // already diagnosed
      for (int b = lsb; b <= msb; ++b) {
        for (const auto& [ob, owner] : bit_owner[f.reg]) {
          if (ob == b && owner != v.name) {
            std::ostringstream os;
            os << "bit " << b << " of register '" << f.reg
               << "' is used by both '" << owner << "' and '" << v.name << "'";
            diags_.error("DVL221", f.loc, os.str());
          }
        }
        bit_owner[f.reg].emplace_back(b, v.name);
      }
    }
  }
}

void Sema::check_no_omission(const DeviceDecl& dev, DeviceInfo& info) {
  // Every register must be used by some variable.
  std::set<std::string> used_regs;
  std::map<std::string, std::set<int>> covered_bits;
  for (const auto& v : dev.variables) {
    for (const auto& f : v.fragments) {
      used_regs.insert(f.reg);
      auto rit = info.registers.find(f.reg);
      if (rit == info.registers.end()) continue;
      int size = rit->second.decl->size_bits;
      int msb = f.has_range ? f.msb : size - 1;
      int lsb = f.has_range ? f.lsb : 0;
      if (msb < lsb || lsb < 0 || msb >= size) continue;
      for (int b = lsb; b <= msb; ++b) covered_bits[f.reg].insert(b);
    }
  }
  for (const auto& r : dev.registers) {
    if (!used_regs.count(r.name)) {
      diags_.error("DVL230", r.loc,
                   fmt("register ", r.name, " is not used by any variable"));
      continue;
    }
    auto rit = info.registers.find(r.name);
    if (rit == info.registers.end()) continue;
    for (int b = 0; b < r.size_bits; ++b) {
      if (rit->second.mask_bit(b) == '.' && !covered_bits[r.name].count(b)) {
        std::ostringstream os;
        os << "relevant bit " << b << " of register '" << r.name
           << "' is not covered by any variable";
        diags_.error("DVL231", r.loc, os.str());
      }
    }
  }

  // Every port parameter, and every offset of its declared range, must be
  // used by some register.
  std::map<std::string, std::set<uint64_t>> used_offsets;
  for (const auto& r : dev.registers) {
    for (const auto& b : r.bindings) used_offsets[b.port.base].insert(b.port.offset);
  }
  for (const auto& p : dev.params) {
    auto it = used_offsets.find(p.name);
    if (it == used_offsets.end()) {
      diags_.error("DVL232", p.loc,
                   fmt("port parameter ", p.name, " is never used"));
      continue;
    }
    for (uint64_t off : p.offsets) {
      if (!it->second.count(off)) {
        std::ostringstream os;
        os << "offset " << off << " of port '" << p.name
           << "' is declared but never used";
        diags_.error("DVL233", p.loc, os.str());
      }
    }
  }
}

}  // namespace devil
