// Semantic analysis of Devil specifications (paper §2.2).
//
// Implements the consistency rules the paper enumerates:
//  - intra-layer: type correctness, size checks, uniqueness;
//  - inter-layer: access-attribute consistency, read-mapping exhaustiveness,
//    the no-omission constraints, and the no-overlap constraints.
// Every rule has a stable diagnostic code so the mutation campaign can
// attribute detections to specific checks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "devil/ast.h"
#include "support/diagnostics.h"

namespace devil {

/// Resolved view of a register after semantic analysis.
struct RegInfo {
  const RegisterDecl* decl = nullptr;
  Access access = Access::kReadWrite;
  /// Effective mask: one char per bit, size_bits long, MSB first. When the
  /// declaration has no mask this is all '.'.
  std::string mask;

  [[nodiscard]] char mask_bit(int i) const {
    // A mutant can desynchronise mask length and register width — always a
    // DVL114 error, but later per-bit checks still run; bits beyond the
    // pattern read as irrelevant instead of out of bounds. Acceptance is
    // unaffected: the length mismatch already failed the spec.
    size_t ix = static_cast<size_t>(i);
    if (ix >= mask.size()) return '.';
    return mask[mask.size() - 1 - ix];
  }
};

/// Resolved view of a variable.
struct VarInfo {
  const VariableDecl* decl = nullptr;
  int width_bits = 0;      // total width of the concatenated fragments
  Access access = Access::kReadWrite;  // derived from the registers used
  int type_id = 0;         // specification-unique type counter (paper §2.3)
};

/// Semantic model of a checked device, consumed by the code generator.
struct DeviceInfo {
  const DeviceDecl* decl = nullptr;
  std::map<std::string, const PortParam*> ports;
  std::map<std::string, RegInfo> registers;
  std::map<std::string, VarInfo> variables;
};

/// Width in bits needed by a Devil type (enum width = pattern length).
[[nodiscard]] int type_width_bits(const TypeExpr& ty);

class Sema {
 public:
  explicit Sema(support::DiagnosticEngine& diags) : diags_(diags) {}

  /// Runs all checks. Returns the resolved model if there were no errors.
  [[nodiscard]] std::optional<DeviceInfo> check(const Specification& spec);

 private:
  void check_ports(const DeviceDecl& dev, DeviceInfo& info);
  void check_registers(const DeviceDecl& dev, DeviceInfo& info);
  void check_variables(const DeviceDecl& dev, DeviceInfo& info);
  void check_pre_actions(const DeviceDecl& dev, DeviceInfo& info);
  void check_overlap(const DeviceDecl& dev, DeviceInfo& info);
  void check_no_omission(const DeviceDecl& dev, DeviceInfo& info);

  support::DiagnosticEngine& diags_;
};

}  // namespace devil
