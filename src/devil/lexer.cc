#include "devil/lexer.h"

#include <cctype>
#include <unordered_map>

namespace devil {

const char* tok_kind_name(TokKind k) {
  switch (k) {
    case TokKind::kEof: return "<eof>";
    case TokKind::kError: return "<error>";
    case TokKind::kIdent: return "identifier";
    case TokKind::kInt: return "integer";
    case TokKind::kBitString: return "bit string";
    case TokKind::kKwDevice: return "'device'";
    case TokKind::kKwRegister: return "'register'";
    case TokKind::kKwVariable: return "'variable'";
    case TokKind::kKwPrivate: return "'private'";
    case TokKind::kKwVolatile: return "'volatile'";
    case TokKind::kKwRead: return "'read'";
    case TokKind::kKwWrite: return "'write'";
    case TokKind::kKwTrigger: return "'trigger'";
    case TokKind::kKwMask: return "'mask'";
    case TokKind::kKwPre: return "'pre'";
    case TokKind::kKwPort: return "'port'";
    case TokKind::kKwBit: return "'bit'";
    case TokKind::kKwInt: return "'int'";
    case TokKind::kKwSigned: return "'signed'";
    case TokKind::kKwBool: return "'bool'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kAt: return "'@'";
    case TokKind::kColon: return "':'";
    case TokKind::kSemi: return "';'";
    case TokKind::kComma: return "','";
    case TokKind::kEq: return "'='";
    case TokKind::kHash: return "'#'";
    case TokKind::kDotDot: return "'..'";
    case TokKind::kArrowRead: return "'<='";
    case TokKind::kArrowWrite: return "'=>'";
    case TokKind::kArrowBoth: return "'<=>'";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string_view, TokKind>& keywords() {
  static const std::unordered_map<std::string_view, TokKind> kw = {
      {"device", TokKind::kKwDevice},     {"register", TokKind::kKwRegister},
      {"variable", TokKind::kKwVariable}, {"private", TokKind::kKwPrivate},
      {"volatile", TokKind::kKwVolatile}, {"read", TokKind::kKwRead},
      {"write", TokKind::kKwWrite},       {"trigger", TokKind::kKwTrigger},
      {"mask", TokKind::kKwMask},         {"pre", TokKind::kKwPre},
      {"port", TokKind::kKwPort},         {"bit", TokKind::kKwBit},
      {"int", TokKind::kKwInt},           {"signed", TokKind::kKwSigned},
      {"bool", TokKind::kKwBool},
  };
  return kw;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

char Lexer::peek(int ahead) const {
  size_t i = loc_.offset + static_cast<size_t>(ahead);
  return i < buf_.text().size() ? buf_.text()[i] : '\0';
}

char Lexer::advance() {
  char c = peek();
  if (c == '\0') return c;
  ++loc_.offset;
  if (c == '\n') {
    ++loc_.line;
    loc_.column = 1;
  } else {
    ++loc_.column;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_trivia() {
  for (;;) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/') && peek() != '\0') advance();
      if (peek() != '\0') {
        advance();
        advance();
      }
    } else {
      return;
    }
  }
}

Token Lexer::make(TokKind kind, support::SourceLoc begin, std::string text) {
  Token t;
  t.kind = kind;
  t.range = {begin, loc_};
  t.text = std::move(text);
  return t;
}

Token Lexer::next() {
  skip_trivia();
  support::SourceLoc begin = loc_;
  char c = peek();
  if (c == '\0') return make(TokKind::kEof, begin, "");

  if (is_ident_start(c)) {
    std::string text;
    while (is_ident_char(peek())) text += advance();
    auto it = keywords().find(text);
    return make(it != keywords().end() ? it->second : TokKind::kIdent, begin,
                std::move(text));
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string text;
    uint64_t value = 0;
    if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      text += advance();
      text += advance();
      while (std::isxdigit(static_cast<unsigned char>(peek())))
        text += advance();
      if (text.size() == 2) {
        diags_.error("DVL010", begin, "incomplete hexadecimal literal");
        return make(TokKind::kError, begin, std::move(text));
      }
      value = std::stoull(text.substr(2), nullptr, 16);
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        text += advance();
      value = std::stoull(text, nullptr, 10);
    }
    Token t = make(TokKind::kInt, begin, std::move(text));
    t.int_value = value;
    return t;
  }

  if (c == '\'') {
    advance();
    std::string text;
    while (peek() != '\'' && peek() != '\n' && peek() != '\0')
      text += advance();
    if (!match('\'')) {
      diags_.error("DVL011", begin, "unterminated bit string");
      return make(TokKind::kError, begin, std::move(text));
    }
    for (char bc : text) {
      if (bc != '0' && bc != '1' && bc != '*' && bc != '.') {
        diags_.error("DVL012", begin,
                     std::string("invalid character '") + bc +
                         "' in bit string (expected 0, 1, *, .)");
        return make(TokKind::kError, begin, std::move(text));
      }
    }
    return make(TokKind::kBitString, begin, std::move(text));
  }

  advance();
  switch (c) {
    case '{': return make(TokKind::kLBrace, begin, "{");
    case '}': return make(TokKind::kRBrace, begin, "}");
    case '(': return make(TokKind::kLParen, begin, "(");
    case ')': return make(TokKind::kRParen, begin, ")");
    case '[': return make(TokKind::kLBracket, begin, "[");
    case ']': return make(TokKind::kRBracket, begin, "]");
    case '@': return make(TokKind::kAt, begin, "@");
    case ':': return make(TokKind::kColon, begin, ":");
    case ';': return make(TokKind::kSemi, begin, ";");
    case ',': return make(TokKind::kComma, begin, ",");
    case '#': return make(TokKind::kHash, begin, "#");
    case '.':
      if (match('.')) return make(TokKind::kDotDot, begin, "..");
      diags_.error("DVL013", begin, "stray '.' (did you mean '..'?)");
      return make(TokKind::kError, begin, ".");
    case '=':
      if (match('>')) return make(TokKind::kArrowWrite, begin, "=>");
      return make(TokKind::kEq, begin, "=");
    case '<':
      if (match('=')) {
        if (match('>')) return make(TokKind::kArrowBoth, begin, "<=>");
        return make(TokKind::kArrowRead, begin, "<=");
      }
      diags_.error("DVL014", begin, "stray '<'");
      return make(TokKind::kError, begin, "<");
    default:
      diags_.error("DVL015", begin,
                   std::string("unexpected character '") + c + "'");
      return make(TokKind::kError, begin, std::string(1, c));
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    bool eof = t.is(TokKind::kEof);
    out.push_back(std::move(t));
    if (eof) break;
  }
  return out;
}

}  // namespace devil
