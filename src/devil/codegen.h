// Stub generation from a checked Devil specification (paper §2.3, Fig. 4).
//
// Stubs are emitted as MiniC source (our C-subset substrate). Two modes:
//
//  - kProduction: Devil types map to plain integers; enum values are object
//    macros. Minimal compile-time protection — this is the baseline whose
//    weakness Table 3 quantifies for classic C code.
//  - kDebug: every Devil type becomes a distinct struct carrying a
//    (filename, type-id, value) triple; read stubs assert value ranges and
//    mask conformance; `dil_eq` performs the run-time type-tag check.
//
// The CDevil glue code is written once and compiles against either mode:
// production defines `X_t` as a macro alias of an integer type, debug defines
// `struct X_t`.
#pragma once

#include <string>

#include "devil/sema.h"

namespace devil {

enum class CodegenMode { kProduction, kDebug };

/// Generates the stub "header" for `info`. `header_name` becomes the
/// __FILE__ tag carried by debug values (paper: the generated .dil.h file).
[[nodiscard]] std::string generate_stubs(const DeviceInfo& info,
                                         CodegenMode mode,
                                         const std::string& header_name);

}  // namespace devil
