// Abstract syntax for the Devil IDL.
//
// A Devil specification describes a device in three layers (paper §2.1):
//   ports  ->  registers  ->  device variables
// Each layer is represented here structurally; semantic consistency between
// layers is established by `devil::Sema`.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/source.h"

namespace devil {

/// Direction of access allowed on a port, register or variable.
enum class Access { kRead, kWrite, kReadWrite };

[[nodiscard]] inline bool can_read(Access a) { return a != Access::kWrite; }
[[nodiscard]] inline bool can_write(Access a) { return a != Access::kRead; }

/// Port parameter of a device declaration:
///   base : bit[8] port @ {0..3}     (contiguous range)
///   ctl  : bit[8] port @ {0, 2, 4}  (explicit offset set)
struct PortParam {
  std::string name;
  int width_bits = 8;          // data-path width of the port
  std::vector<uint64_t> offsets;  // valid offsets, ascending, unique-checked
  bool has_empty_range = false;   // a `lo..hi` group with lo > hi
  support::SourceLoc loc;

  [[nodiscard]] bool allows(uint64_t offset) const {
    for (uint64_t o : offsets) {
      if (o == offset) return true;
    }
    return false;
  }
};

/// A port expression used in a register declaration: `base @ 1`, or just
/// `base` (offset 0).
struct PortExpr {
  std::string base;
  uint64_t offset = 0;
  bool has_offset = false;
  support::SourceLoc loc;
};

/// One access binding of a register: `read base @ 0` / `write base @ 2`.
struct PortBinding {
  Access access = Access::kReadWrite;
  PortExpr port;
};

/// Pre-action attached to a register: `pre { index = 0 }`.
/// The assigned entity must be a (typically private) device variable.
struct PreAction {
  std::string var;
  uint64_t value = 0;
  support::SourceLoc loc;
};

/// Bit-constraint mask, e.g. mask '1..00000'. Characters, MSB first:
///   '.' relevant bit; '0'/'1' irrelevant on read, forced on write;
///   '*' irrelevant both ways.
struct Mask {
  std::string pattern;  // MSB-first, one char per register bit
  support::SourceLoc loc;

  [[nodiscard]] bool empty() const { return pattern.empty(); }
  /// Bit index i (LSB = 0): pattern character for that bit.
  [[nodiscard]] char bit(int i) const {
    return pattern[pattern.size() - 1 - static_cast<size_t>(i)];
  }
};

/// register name = [read|write] port [, pre {..}] [, mask '..'] : bit[N];
struct RegisterDecl {
  std::string name;
  std::vector<PortBinding> bindings;  // 1 or 2 (read + write)
  std::vector<PreAction> pre_actions;
  Mask mask;  // empty pattern if absent
  int size_bits = 8;
  support::SourceLoc loc;

  [[nodiscard]] Access access() const {
    bool r = false, w = false;
    for (const auto& b : bindings) {
      r = r || can_read(b.access);
      w = w || can_write(b.access);
    }
    if (r && w) return Access::kReadWrite;
    return r ? Access::kRead : Access::kWrite;
  }
};

/// Reference to a contiguous bit range of a register:
///   x_high[3..0], index_reg[4], sig_reg (whole register)
struct RegFragment {
  std::string reg;
  bool has_range = false;
  int msb = 0;
  int lsb = 0;
  support::SourceLoc loc;
};

/// Direction of an enumerated-type mapping item.
enum class MappingDir {
  kRead,   // NAME <= 'bits'  : pattern read from device maps to NAME
  kWrite,  // NAME => 'bits'  : NAME written by driver produces pattern
  kBoth,   // NAME <=> 'bits'
};

struct EnumItem {
  std::string name;
  MappingDir dir = MappingDir::kBoth;
  std::string pattern;  // bit string, chars '0'/'1' only (checked in sema)
  support::SourceLoc loc;
};

/// Devil variable types (paper §2.1 "Device variables").
enum class TypeKind {
  kInt,        // int(N): unsigned N-bit integer
  kSignedInt,  // signed int(N)
  kBool,       // bool (1 bit)
  kEnum,       // { NAME <=> '...' , ... }
  kIntSet,     // int{0,2,3} or int{0..5} — fixed set of allowed values
};

struct TypeExpr {
  TypeKind kind = TypeKind::kInt;
  int width_bits = 0;                // kInt / kSignedInt
  std::vector<EnumItem> items;       // kEnum
  std::vector<uint64_t> set_values;  // kIntSet (expanded, sorted, unique-checked in sema)
  support::SourceLoc loc;
};

/// variable name = frag [# frag]* [, volatile] [, write trigger] : type;
struct VariableDecl {
  std::string name;
  bool is_private = false;
  bool is_volatile = false;
  bool write_trigger = false;
  std::vector<RegFragment> fragments;  // MSB-first concatenation order
  TypeExpr type;
  support::SourceLoc loc;
};

/// device name (param, ...) { registers and variables }
struct DeviceDecl {
  std::string name;
  std::vector<PortParam> params;
  std::vector<RegisterDecl> registers;
  std::vector<VariableDecl> variables;
  support::SourceLoc loc;
};

/// A parsed specification (exactly one device per file, as in the paper).
struct Specification {
  DeviceDecl device;
};

}  // namespace devil
