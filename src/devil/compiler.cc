#include "devil/compiler.h"

#include <sstream>

#include "devil/lexer.h"
#include "devil/parser.h"

namespace devil {

namespace {
CompileResult run(const std::string& name, const std::string& text,
                  std::optional<CodegenMode> mode) {
  CompileResult result;
  support::SourceBuffer buf(name, text);
  Lexer lexer(buf, result.diags);
  auto tokens = lexer.lex_all();
  if (result.diags.has_errors()) return result;

  Parser parser(std::move(tokens), result.diags);
  auto spec = parser.parse();
  if (!spec) return result;
  result.spec = std::make_unique<Specification>(std::move(*spec));

  Sema sema(result.diags);
  result.info = sema.check(*result.spec);
  if (!result.info) return result;

  if (mode) result.stubs = generate_stubs(*result.info, *mode, name);
  return result;
}
}  // namespace

CompileResult compile_spec(const std::string& name, const std::string& text,
                           CodegenMode mode) {
  return run(name, text, mode);
}

CompileResult check_spec(const std::string& name, const std::string& text) {
  return run(name, text, std::nullopt);
}

std::string describe_device(const DeviceInfo& info) {
  std::ostringstream os;
  os << "device " << info.decl->name << ": " << info.decl->params.size()
     << " port(s), " << info.decl->registers.size() << " register(s), "
     << info.decl->variables.size() << " variable(s)\n";
  for (const auto& r : info.decl->registers) {
    const RegInfo& ri = info.registers.at(r.name);
    os << "  register " << r.name << " : bit[" << r.size_bits << "] "
       << (ri.access == Access::kRead
               ? "read-only"
               : ri.access == Access::kWrite ? "write-only" : "read-write")
       << " mask '" << ri.mask << "'\n";
  }
  for (const auto& v : info.decl->variables) {
    const VarInfo& vi = info.variables.at(v.name);
    os << "  " << (v.is_private ? "private " : "") << "variable " << v.name
       << " : " << vi.width_bits << " bit(s), type-id " << vi.type_id << "\n";
  }
  return os.str();
}

}  // namespace devil
