#include "devil/printer.h"

#include <sstream>

namespace devil {

namespace {

void print_port_expr(std::ostringstream& os, const PortExpr& pe) {
  os << pe.base;
  if (pe.has_offset) os << " @ " << pe.offset;
}

const char* arrow(MappingDir dir) {
  switch (dir) {
    case MappingDir::kRead: return "<=";
    case MappingDir::kWrite: return "=>";
    case MappingDir::kBoth: return "<=>";
  }
  return "<=>";
}

}  // namespace

std::string print_type(const TypeExpr& type) {
  std::ostringstream os;
  switch (type.kind) {
    case TypeKind::kInt:
      os << "int(" << type.width_bits << ")";
      break;
    case TypeKind::kSignedInt:
      os << "signed int(" << type.width_bits << ")";
      break;
    case TypeKind::kBool:
      os << "bool";
      break;
    case TypeKind::kEnum: {
      os << "{ ";
      for (size_t i = 0; i < type.items.size(); ++i) {
        if (i) os << ", ";
        const EnumItem& item = type.items[i];
        os << item.name << ' ' << arrow(item.dir) << " '" << item.pattern
           << "'";
      }
      os << " }";
      break;
    }
    case TypeKind::kIntSet: {
      // Re-compress runs of three or more into ranges for readability.
      os << "int{";
      bool first = true;
      for (size_t i = 0; i < type.set_values.size();) {
        size_t j = i;
        while (j + 1 < type.set_values.size() &&
               type.set_values[j + 1] == type.set_values[j] + 1) {
          ++j;
        }
        if (!first) os << ",";
        first = false;
        if (j >= i + 2) {
          os << type.set_values[i] << ".." << type.set_values[j];
        } else {
          os << type.set_values[i];
          if (j == i + 1) os << "," << type.set_values[j];
        }
        i = j + 1;
      }
      os << "}";
      break;
    }
  }
  return os.str();
}

std::string print_register(const RegisterDecl& reg) {
  std::ostringstream os;
  os << "register " << reg.name << " = ";
  for (size_t i = 0; i < reg.bindings.size(); ++i) {
    if (i) os << ", ";
    const PortBinding& b = reg.bindings[i];
    if (b.access == Access::kRead) os << "read ";
    if (b.access == Access::kWrite) os << "write ";
    print_port_expr(os, b.port);
  }
  for (const auto& pa : reg.pre_actions) {
    os << ", pre {" << pa.var << " = " << pa.value << "}";
  }
  if (!reg.mask.empty()) os << ", mask '" << reg.mask.pattern << "'";
  os << " : bit[" << reg.size_bits << "];";
  return os.str();
}

std::string print_variable(const VariableDecl& var) {
  std::ostringstream os;
  if (var.is_private) os << "private ";
  os << "variable " << var.name << " = ";
  for (size_t i = 0; i < var.fragments.size(); ++i) {
    if (i) os << " # ";
    const RegFragment& f = var.fragments[i];
    os << f.reg;
    if (f.has_range) {
      os << '[' << f.msb;
      if (f.msb != f.lsb) os << ".." << f.lsb;
      os << ']';
    }
  }
  if (var.is_volatile) os << ", volatile";
  if (var.write_trigger) os << ", write trigger";
  os << " : " << print_type(var.type) << ";";
  return os.str();
}

std::string print_spec(const Specification& spec) {
  const DeviceDecl& dev = spec.device;
  std::ostringstream os;
  os << "device " << dev.name << " (";
  for (size_t i = 0; i < dev.params.size(); ++i) {
    if (i) os << ",\n" << std::string(dev.name.size() + 9, ' ');
    const PortParam& p = dev.params[i];
    os << p.name << " : bit[" << p.width_bits << "] port @ {";
    // Compress consecutive offsets into ranges (mirrors the int-set rule).
    bool first_group = true;
    for (size_t k = 0; k < p.offsets.size();) {
      size_t j = k;
      while (j + 1 < p.offsets.size() &&
             p.offsets[j + 1] == p.offsets[j] + 1) {
        ++j;
      }
      if (!first_group) os << ", ";
      first_group = false;
      os << p.offsets[k];
      if (j > k) os << ".." << p.offsets[j];
      k = j + 1;
    }
    os << "}";
  }
  os << ")\n{\n";

  // Interleave registers and variables in source order (by location), the
  // layout style of the paper's Fig. 3.
  size_t ri = 0, vi = 0;
  while (ri < dev.registers.size() || vi < dev.variables.size()) {
    bool take_reg =
        ri < dev.registers.size() &&
        (vi >= dev.variables.size() ||
         dev.registers[ri].loc.offset < dev.variables[vi].loc.offset);
    if (take_reg) {
      os << "  " << print_register(dev.registers[ri++]) << "\n";
    } else {
      os << "  " << print_variable(dev.variables[vi++]) << "\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace devil
