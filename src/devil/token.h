// Token model for the Devil IDL (paper §2.1, Fig. 3).
#pragma once

#include <string>
#include <string_view>

#include "support/source.h"

namespace devil {

enum class TokKind {
  kEof,
  kError,

  // Literals and identifiers.
  kIdent,       // logitech_busmouse, sig_reg, MASTER, ...
  kInt,         // 42, 0x1f0
  kBitString,   // '1001000.' — mask / bit-pattern literal (chars 0 1 * .)

  // Keywords.
  kKwDevice,
  kKwRegister,
  kKwVariable,
  kKwPrivate,
  kKwVolatile,
  kKwRead,
  kKwWrite,
  kKwTrigger,
  kKwMask,
  kKwPre,
  kKwPort,
  kKwBit,
  kKwInt,
  kKwSigned,
  kKwBool,

  // Punctuation / operators.
  kLBrace,      // {
  kRBrace,      // }
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kAt,          // @
  kColon,       // :
  kSemi,        // ;
  kComma,       // ,
  kEq,          // =
  kHash,        // #   (register concatenation)
  kDotDot,      // ..  (ranges)
  kArrowRead,   // <=  (read mapping: bits -> name)
  kArrowWrite,  // =>  (write mapping: name -> bits)
  kArrowBoth,   // <=> (bidirectional mapping)
};

[[nodiscard]] const char* tok_kind_name(TokKind k);

struct Token {
  TokKind kind = TokKind::kEof;
  support::SourceRange range;
  std::string text;       // raw spelling (bit strings keep their quotes off)
  uint64_t int_value = 0; // valid when kind == kInt

  [[nodiscard]] bool is(TokKind k) const { return kind == k; }
};

}  // namespace devil
