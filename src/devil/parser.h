// Recursive-descent parser for the Devil IDL.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "devil/ast.h"
#include "devil/token.h"
#include "support/diagnostics.h"

namespace devil {

class Parser {
 public:
  Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags)
      : toks_(std::move(tokens)), diags_(diags) {}

  /// Parses one specification. Returns nullopt on a parse error (diagnostics
  /// explain why). Mutation-generated specs are syntactically valid by
  /// construction (§3.1), so in the campaigns a parse failure is a bug in the
  /// mutation engine, not a detected mutant.
  [[nodiscard]] std::optional<Specification> parse();

 private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(TokKind k) const { return peek().is(k); }
  bool accept(TokKind k);
  bool expect(TokKind k, const char* what);
  [[noreturn]] void fail();

  DeviceDecl parse_device();
  PortParam parse_port_param();
  RegisterDecl parse_register();
  VariableDecl parse_variable(bool is_private);
  PortExpr parse_port_expr();
  PreAction parse_pre_action();
  RegFragment parse_fragment();
  TypeExpr parse_type();
  std::vector<EnumItem> parse_enum_items();
  uint64_t parse_int(const char* what);

  std::vector<Token> toks_;
  support::DiagnosticEngine& diags_;
  size_t pos_ = 0;
  bool ok_ = true;
};

struct ParseError {};

}  // namespace devil
