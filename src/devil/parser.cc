#include "devil/parser.h"

#include <string>

namespace devil {

const Token& Parser::peek(int ahead) const {
  size_t i = pos_ + static_cast<size_t>(ahead);
  if (i >= toks_.size()) i = toks_.size() - 1;  // EOF token
  return toks_[i];
}

const Token& Parser::advance() {
  const Token& t = toks_[pos_];
  if (pos_ + 1 < toks_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokKind k) {
  if (!check(k)) return false;
  advance();
  return true;
}

bool Parser::expect(TokKind k, const char* what) {
  if (accept(k)) return true;
  diags_.error("DVL020", peek().range.begin,
               std::string("expected ") + tok_kind_name(k) + " " + what +
                   ", found " + tok_kind_name(peek().kind) +
                   (peek().text.empty() ? "" : " '" + peek().text + "'"));
  fail();
}

void Parser::fail() { throw ParseError{}; }

std::optional<Specification> Parser::parse() {
  try {
    Specification spec;
    spec.device = parse_device();
    if (!check(TokKind::kEof)) {
      diags_.error("DVL021", peek().range.begin,
                   "trailing tokens after device declaration");
      return std::nullopt;
    }
    return spec;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

DeviceDecl Parser::parse_device() {
  DeviceDecl dev;
  dev.loc = peek().range.begin;
  expect(TokKind::kKwDevice, "to begin a specification");
  if (!check(TokKind::kIdent)) {
    diags_.error("DVL022", peek().range.begin, "expected device name");
    fail();
  }
  dev.name = advance().text;

  expect(TokKind::kLParen, "to open the port parameter list");
  if (!check(TokKind::kRParen)) {
    dev.params.push_back(parse_port_param());
    while (accept(TokKind::kComma)) dev.params.push_back(parse_port_param());
  }
  expect(TokKind::kRParen, "to close the port parameter list");

  expect(TokKind::kLBrace, "to open the device body");
  while (!check(TokKind::kRBrace) && !check(TokKind::kEof)) {
    if (check(TokKind::kKwRegister)) {
      dev.registers.push_back(parse_register());
    } else if (check(TokKind::kKwVariable)) {
      dev.variables.push_back(parse_variable(/*is_private=*/false));
    } else if (check(TokKind::kKwPrivate)) {
      advance();
      if (!check(TokKind::kKwVariable)) {
        diags_.error("DVL023", peek().range.begin,
                     "'private' must be followed by 'variable'");
        fail();
      }
      dev.variables.push_back(parse_variable(/*is_private=*/true));
    } else {
      diags_.error("DVL024", peek().range.begin,
                   std::string("expected 'register' or 'variable', found ") +
                       tok_kind_name(peek().kind));
      fail();
    }
  }
  expect(TokKind::kRBrace, "to close the device body");
  return dev;
}

// base : bit[8] port @ {0..3}
PortParam Parser::parse_port_param() {
  PortParam p;
  p.loc = peek().range.begin;
  if (!check(TokKind::kIdent)) {
    diags_.error("DVL025", peek().range.begin, "expected port parameter name");
    fail();
  }
  p.name = advance().text;
  expect(TokKind::kColon, "after port parameter name");
  expect(TokKind::kKwBit, "in port parameter type");
  expect(TokKind::kLBracket, "in port width");
  p.width_bits = static_cast<int>(parse_int("port width"));
  expect(TokKind::kRBracket, "after port width");
  expect(TokKind::kKwPort, "in port parameter type");
  expect(TokKind::kAt, "before the port offset range");
  expect(TokKind::kLBrace, "to open the offset range");
  do {
    uint64_t lo = parse_int("offset");
    if (accept(TokKind::kDotDot)) {
      uint64_t hi = parse_int("range upper bound");
      for (uint64_t v = lo; v <= hi; ++v) p.offsets.push_back(v);
      if (lo > hi) p.has_empty_range = true;  // sema reports DVL102
    } else {
      p.offsets.push_back(lo);
    }
  } while (accept(TokKind::kComma));
  expect(TokKind::kRBrace, "to close the offset range");
  return p;
}

// base @ 1  |  base
PortExpr Parser::parse_port_expr() {
  PortExpr pe;
  pe.loc = peek().range.begin;
  if (!check(TokKind::kIdent)) {
    diags_.error("DVL026", peek().range.begin, "expected port name");
    fail();
  }
  pe.base = advance().text;
  if (accept(TokKind::kAt)) {
    pe.has_offset = true;
    pe.offset = parse_int("port offset");
  }
  return pe;
}

PreAction Parser::parse_pre_action() {
  PreAction pa;
  expect(TokKind::kLBrace, "to open the pre-action");
  pa.loc = peek().range.begin;
  if (!check(TokKind::kIdent)) {
    diags_.error("DVL027", peek().range.begin,
                 "expected variable name in pre-action");
    fail();
  }
  pa.var = advance().text;
  expect(TokKind::kEq, "in pre-action assignment");
  pa.value = parse_int("pre-action value");
  expect(TokKind::kRBrace, "to close the pre-action");
  return pa;
}

// register name = [read|write] port [, more bindings/pre/mask] : bit[N];
RegisterDecl Parser::parse_register() {
  RegisterDecl reg;
  reg.loc = peek().range.begin;
  expect(TokKind::kKwRegister, "");
  if (!check(TokKind::kIdent)) {
    diags_.error("DVL028", peek().range.begin, "expected register name");
    fail();
  }
  reg.name = advance().text;
  expect(TokKind::kEq, "after register name");

  auto parse_binding = [&] {
    PortBinding b;
    if (accept(TokKind::kKwRead)) {
      b.access = Access::kRead;
    } else if (accept(TokKind::kKwWrite)) {
      b.access = Access::kWrite;
    } else {
      b.access = Access::kReadWrite;
    }
    b.port = parse_port_expr();
    reg.bindings.push_back(std::move(b));
  };
  parse_binding();

  while (accept(TokKind::kComma)) {
    if (check(TokKind::kKwRead) || check(TokKind::kKwWrite)) {
      parse_binding();
    } else if (accept(TokKind::kKwPre)) {
      reg.pre_actions.push_back(parse_pre_action());
    } else if (accept(TokKind::kKwMask)) {
      if (!check(TokKind::kBitString)) {
        diags_.error("DVL029", peek().range.begin,
                     "expected bit-string literal after 'mask'");
        fail();
      }
      const Token& t = advance();
      reg.mask.pattern = t.text;
      reg.mask.loc = t.range.begin;
    } else {
      diags_.error("DVL030", peek().range.begin,
                   "expected 'read', 'write', 'pre' or 'mask' in register "
                   "attribute list");
      fail();
    }
  }

  expect(TokKind::kColon, "before register size");
  expect(TokKind::kKwBit, "in register size");
  expect(TokKind::kLBracket, "in register size");
  reg.size_bits = static_cast<int>(parse_int("register size"));
  expect(TokKind::kRBracket, "after register size");
  expect(TokKind::kSemi, "to end the register declaration");
  return reg;
}

// x_high[3..0]  |  index_reg[4]  |  sig_reg
RegFragment Parser::parse_fragment() {
  RegFragment f;
  f.loc = peek().range.begin;
  if (!check(TokKind::kIdent)) {
    diags_.error("DVL031", peek().range.begin,
                 "expected register name in variable definition");
    fail();
  }
  f.reg = advance().text;
  if (accept(TokKind::kLBracket)) {
    f.has_range = true;
    f.msb = static_cast<int>(parse_int("bit index"));
    if (accept(TokKind::kDotDot)) {
      f.lsb = static_cast<int>(parse_int("bit index"));
    } else {
      f.lsb = f.msb;
    }
    expect(TokKind::kRBracket, "after bit range");
  }
  return f;
}

std::vector<EnumItem> Parser::parse_enum_items() {
  std::vector<EnumItem> items;
  do {
    EnumItem item;
    item.loc = peek().range.begin;
    if (!check(TokKind::kIdent)) {
      diags_.error("DVL032", peek().range.begin,
                   "expected symbolic name in enumerated type");
      fail();
    }
    item.name = advance().text;
    if (accept(TokKind::kArrowBoth)) {
      item.dir = MappingDir::kBoth;
    } else if (accept(TokKind::kArrowWrite)) {
      item.dir = MappingDir::kWrite;
    } else if (accept(TokKind::kArrowRead)) {
      item.dir = MappingDir::kRead;
    } else {
      diags_.error("DVL033", peek().range.begin,
                   "expected '<=', '=>' or '<=>' in enumerated type");
      fail();
    }
    if (!check(TokKind::kBitString)) {
      diags_.error("DVL034", peek().range.begin,
                   "expected bit-string literal in enumerated type");
      fail();
    }
    const Token& t = advance();
    item.pattern = t.text;
    items.push_back(std::move(item));
  } while (accept(TokKind::kComma));
  return items;
}

// int(8) | signed int(8) | bool | { ... } | int{0,2,3} | int{0..5}
TypeExpr Parser::parse_type() {
  TypeExpr ty;
  ty.loc = peek().range.begin;
  if (accept(TokKind::kKwSigned)) {
    ty.kind = TypeKind::kSignedInt;
    expect(TokKind::kKwInt, "after 'signed'");
    expect(TokKind::kLParen, "in integer type");
    ty.width_bits = static_cast<int>(parse_int("type width"));
    expect(TokKind::kRParen, "after type width");
    return ty;
  }
  if (accept(TokKind::kKwBool)) {
    ty.kind = TypeKind::kBool;
    ty.width_bits = 1;
    return ty;
  }
  if (accept(TokKind::kKwInt)) {
    if (accept(TokKind::kLParen)) {
      ty.kind = TypeKind::kInt;
      ty.width_bits = static_cast<int>(parse_int("type width"));
      expect(TokKind::kRParen, "after type width");
      return ty;
    }
    expect(TokKind::kLBrace, "in integer-set type");
    ty.kind = TypeKind::kIntSet;
    do {
      uint64_t lo = parse_int("set element");
      if (accept(TokKind::kDotDot)) {
        uint64_t hi = parse_int("set range upper bound");
        for (uint64_t v = lo; v <= hi; ++v) ty.set_values.push_back(v);
      } else {
        ty.set_values.push_back(lo);
      }
    } while (accept(TokKind::kComma));
    expect(TokKind::kRBrace, "to close the integer-set type");
    return ty;
  }
  if (accept(TokKind::kLBrace)) {
    ty.kind = TypeKind::kEnum;
    ty.items = parse_enum_items();
    expect(TokKind::kRBrace, "to close the enumerated type");
    return ty;
  }
  diags_.error("DVL035", peek().range.begin, "expected a Devil type");
  fail();
}

// variable name = frag [# frag]* [, attrs] : type ;
VariableDecl Parser::parse_variable(bool is_private) {
  VariableDecl var;
  var.is_private = is_private;
  var.loc = peek().range.begin;
  expect(TokKind::kKwVariable, "");
  if (!check(TokKind::kIdent)) {
    diags_.error("DVL036", peek().range.begin, "expected variable name");
    fail();
  }
  var.name = advance().text;
  expect(TokKind::kEq, "after variable name");

  var.fragments.push_back(parse_fragment());
  while (accept(TokKind::kHash)) var.fragments.push_back(parse_fragment());

  while (accept(TokKind::kComma)) {
    if (accept(TokKind::kKwVolatile)) {
      var.is_volatile = true;
    } else if (accept(TokKind::kKwWrite)) {
      expect(TokKind::kKwTrigger, "after 'write' attribute");
      var.write_trigger = true;
    } else {
      diags_.error("DVL037", peek().range.begin,
                   "expected 'volatile' or 'write trigger' attribute");
      fail();
    }
  }

  expect(TokKind::kColon, "before variable type");
  var.type = parse_type();
  expect(TokKind::kSemi, "to end the variable declaration");
  return var;
}

uint64_t Parser::parse_int(const char* what) {
  if (!check(TokKind::kInt)) {
    diags_.error("DVL038", peek().range.begin,
                 std::string("expected integer ") + what);
    fail();
  }
  return advance().int_value;
}

}  // namespace devil
