// Lexer for the Devil IDL.
#pragma once

#include <vector>

#include "devil/token.h"
#include "support/diagnostics.h"
#include "support/source.h"

namespace devil {

class Lexer {
 public:
  Lexer(const support::SourceBuffer& buffer, support::DiagnosticEngine& diags)
      : buf_(buffer), diags_(diags) {}

  /// Lexes the whole buffer. The last token is always kEof.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  Token next();
  Token make(TokKind kind, support::SourceLoc begin, std::string text);
  char peek(int ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_trivia();

  [[nodiscard]] support::SourceLoc here() const { return loc_; }

  const support::SourceBuffer& buf_;
  support::DiagnosticEngine& diags_;
  support::SourceLoc loc_;
};

}  // namespace devil
