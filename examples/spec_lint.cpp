// spec_lint: a command-line Devil specification checker.
//
//   spec_lint file.dil        check a specification file
//   spec_lint --builtin NAME  check a bundled spec (busmouse, ide, pci,
//                             ne2000, permedia2)
//   spec_lint --stubs file    also print the generated debug stubs
//   (no arguments)            read a specification from stdin
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "corpus/specs.h"
#include "devil/compiler.h"

namespace {

const std::string* builtin(const std::string& name) {
  if (name == "busmouse") return &corpus::busmouse_spec();
  if (name == "ide") return &corpus::ide_spec();
  if (name == "pci") return &corpus::pci_busmaster_spec();
  if (name == "ne2000") return &corpus::ne2000_spec();
  if (name == "permedia2") return &corpus::permedia2_spec();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string text, name = "<stdin>";
  bool want_stubs = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stubs") == 0) {
      want_stubs = true;
    } else if (std::strcmp(argv[i], "--builtin") == 0 && i + 1 < argc) {
      const std::string* spec = builtin(argv[++i]);
      if (!spec) {
        std::fprintf(stderr, "unknown builtin spec '%s'\n", argv[i]);
        return 2;
      }
      text = *spec;
      name = std::string(argv[i]) + ".dil";
    } else {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
      name = argv[i];
    }
  }
  if (text.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }

  auto result = want_stubs
                    ? devil::compile_spec(name, text, devil::CodegenMode::kDebug)
                    : devil::check_spec(name, text);
  if (!result.ok()) {
    std::fprintf(stderr, "%s: specification rejected\n%s", name.c_str(),
                 result.diags.render().c_str());
    return 1;
  }
  std::printf("%s: consistent\n%s", name.c_str(),
              devil::describe_device(*result.info).c_str());
  if (want_stubs) std::printf("\n%s", result.stubs.c_str());
  return 0;
}
