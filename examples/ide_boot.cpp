// IDE boot walkthrough: boots the Devil re-engineered IDE driver (the
// Table 4 subject) against the simulated PIIX4 disk and shows what the
// driver observed — capacity, partition table and filesystem — plus the
// first I/O bus transactions.
//
// Usage: ide_boot [--production] [--c-driver] [--walker]
#include <cstdio>
#include <cstring>
#include <memory>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"

int main(int argc, char** argv) {
  bool production = false, use_c = false;
  auto engine = minic::ExecEngine::kBytecodeVm;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--production") == 0) production = true;
    if (std::strcmp(argv[i], "--c-driver") == 0) use_c = true;
    if (std::strcmp(argv[i], "--walker") == 0) {
      engine = minic::ExecEngine::kTreeWalker;
    }
  }

  std::string unit, name;
  if (use_c) {
    name = "ide_c.c";
    unit = corpus::c_ide_driver();
    std::printf("driver: original C (raw inb/outb)\n");
  } else {
    auto mode = production ? devil::CodegenMode::kProduction
                           : devil::CodegenMode::kDebug;
    auto spec = devil::compile_spec("ide.dil", corpus::ide_spec(), mode);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s", spec.diags.render().c_str());
      return 1;
    }
    name = "ide.dil";
    unit = spec.stubs + "\n" + corpus::cdevil_ide_driver();
    std::printf("driver: Devil (%s stubs)\n",
                production ? "production" : "debug");
  }

  hw::IoBus bus;
  bus.enable_trace();
  auto disk = std::make_shared<hw::IdeDisk>();
  bus.map(0x1f0, 8, disk);

  auto out =
      minic::compile_and_run(name, unit, "ide_boot", bus, 3'000'000, engine);
  if (out.fault != minic::FaultKind::kNone) {
    std::printf("boot FAILED: %s\n", out.fault_message.c_str());
    return 1;
  }

  int64_t fp = out.return_value;
  std::printf("boot OK, fingerprint %lld\n", static_cast<long long>(fp));
  std::printf("  partition start : LBA %lld\n",
              static_cast<long long>(fp / 65536));
  std::printf("  sectors read    : %u\n", disk->sectors_read());
  std::printf("  disk damaged    : %s\n", disk->damaged() ? "YES" : "no");
  std::printf("  interp steps    : %llu\n",
              static_cast<unsigned long long>(out.steps_used));

  std::printf("\nfirst 12 bus transactions:\n");
  size_t shown = 0;
  for (const auto& a : bus.trace()) {
    if (shown++ >= 12) break;
    std::printf("  %s port 0x%03x %s 0x%0*x\n", a.is_write ? "out" : "in ",
                a.port, a.is_write ? "<-" : "->", a.width / 4, a.value);
  }
  return 0;
}
