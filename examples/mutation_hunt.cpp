// Mutation hunt: injects the same classic typo into the C driver and the
// Devil driver and shows when (or whether) each toolchain notices — the
// paper's core claim in one runnable scenario.
//
// The typo: the developer confuses the drive-select value with a command
// byte (an inattention error, §3.1).
//
// With `--threads N` it additionally runs the full Tables 3/4 campaigns on
// the parallel engine (N worker threads, 0 = all cores) and prints the
// comparison — the whole paper evaluation in seconds. `--device
// {ide,busmouse,all}` picks the device under test (default: all).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/report.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"

namespace {

minic::ExecEngine g_engine = minic::ExecEngine::kBytecodeVm;

void report(const char* label, const std::string& name,
            const std::string& unit) {
  std::printf("%s\n", label);
  minic::Program prog = minic::compile(name, unit);
  if (!prog.ok()) {
    std::printf("  -> caught at COMPILE TIME:\n     %s\n\n",
                prog.diags.all().front().to_string().c_str());
    return;
  }
  hw::IoBus bus;
  auto disk = std::make_shared<hw::IdeDisk>();
  bus.map(0x1f0, 8, disk);
  auto out = minic::run_unit(*prog.unit, bus, "ide_boot", 3'000'000,
                             g_engine);
  switch (out.fault) {
    case minic::FaultKind::kNone:
      std::printf("  -> NOT DETECTED: kernel boots (fingerprint %lld%s)\n\n",
                  static_cast<long long>(out.return_value),
                  disk->damaged() ? ", disk damaged!" : "");
      return;
    case minic::FaultKind::kDevilAssertion:
      std::printf("  -> caught at RUN TIME by a Devil assertion:\n     %s\n\n",
                  out.fault_message.c_str());
      return;
    case minic::FaultKind::kStepLimit:
      std::printf("  -> kernel hangs (infinite loop), tedious to debug\n\n");
      return;
    default:
      std::printf("  -> kernel halts: %s\n\n", out.fault_message.c_str());
      return;
  }
}

std::string replace_once(std::string text, const std::string& from,
                         const std::string& to) {
  size_t pos = text.find(from);
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

/// Runs one device's full C vs CDevil driver campaigns on `threads`
/// workers and prints the paper's Tables 3/4 plus the headline comparison.
/// With `assert_counters` (the CI Release smoke) the exit code additionally
/// verifies that the throughput machinery actually engaged: canonical
/// dedup skipped at least one mutant and the compiled-prefix cache served
/// every unique compile.
bool run_device_campaigns(const corpus::CampaignDrivers& drivers,
                          unsigned threads, bool assert_counters) {
  eval::DeviceBinding binding = eval::binding_for(drivers.device);

  eval::DriverCampaignConfig c_cfg;
  c_cfg.driver = drivers.c_driver();
  c_cfg.device = binding;
  c_cfg.sample_percent = drivers.sample_percent;
  c_cfg.threads = threads;
  c_cfg.engine = g_engine;
  auto c_res = eval::run_driver_campaign(c_cfg);

  auto spec = devil::compile_spec(drivers.spec_file, drivers.spec(),
                                  devil::CodegenMode::kDebug);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s", spec.diags.render().c_str());
    return false;
  }
  eval::DriverCampaignConfig d_cfg;
  d_cfg.stubs = spec.stubs;
  d_cfg.driver = drivers.cdevil_driver();
  d_cfg.device = binding;
  d_cfg.is_cdevil = true;
  d_cfg.sample_percent = drivers.sample_percent;
  d_cfg.threads = threads;
  d_cfg.engine = g_engine;
  auto d_res = eval::run_driver_campaign(d_cfg);

  std::printf("%s\n", eval::render_campaign_tables(c_res, d_res).c_str());
  std::printf("Engine counters [%s]: C dedup %zu/%zu, prefix-cache %zu; "
              "CDevil dedup %zu/%zu, prefix-cache %zu\n",
              drivers.device, c_res.deduped_mutants, c_res.sampled_mutants,
              c_res.prefix_cache_hits, d_res.deduped_mutants,
              d_res.sampled_mutants, d_res.prefix_cache_hits);
  if (!assert_counters) return true;
  // The walker engine compiles whole units by design, so cache hits are
  // only expected on the bytecode VM.
  const bool expect_cache = g_engine == minic::ExecEngine::kBytecodeVm;
  auto check = [expect_cache, &drivers](const char* what,
                                        const eval::DriverCampaignResult& r) {
    if (r.deduped_mutants == 0) {
      std::fprintf(stderr, "FAIL: %s %s campaign deduped 0 mutants\n",
                   drivers.device, what);
      return false;
    }
    size_t unique = r.sampled_mutants - r.deduped_mutants;
    if (expect_cache &&
        (r.prefix_cache_hits == 0 || r.prefix_cache_hits > unique)) {
      std::fprintf(stderr,
                   "FAIL: %s %s campaign compiled %zu of %zu unique mutants "
                   "through the prefix cache\n",
                   drivers.device, what, r.prefix_cache_hits, unique);
      return false;
    }
    return true;
  };
  return check("C", c_res) & check("CDevil", d_res);
}

/// Runs the campaigns for every corpus device matching `device_filter`
/// ("all" runs each of them — the CI smoke path).
int run_campaigns(unsigned threads, bool assert_counters,
                  const std::string& device_filter) {
  std::printf("Running full mutation campaigns (%u thread(s), 0 = all "
              "cores, %s engine, device %s)...\n\n",
              threads, minic::exec_engine_name(g_engine),
              device_filter.c_str());
  bool ok = true;
  bool matched = false;
  for (const auto& drivers : corpus::campaign_drivers()) {
    if (device_filter != "all" && device_filter != drivers.device) continue;
    matched = true;
    std::printf("=== %s ===\n\n", drivers.device);
    ok &= run_device_campaigns(drivers, threads, assert_counters);
  }
  if (!matched) {
    std::fprintf(stderr, "unknown --device '%s' (known: all",
                 device_filter.c_str());
    for (const auto& drivers : corpus::campaign_drivers()) {
      std::fprintf(stderr, ", %s", drivers.device);
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }
  if (assert_counters) {
    std::printf("counter assertions: %s\n", ok ? "OK" : "FAILED");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // --walker selects the tree-walker oracle instead of the bytecode VM;
  // results are identical, only the wall-clock changes.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--walker") == 0) {
      g_engine = minic::ExecEngine::kTreeWalker;
    }
  }
  bool assert_counters = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--assert-counters") == 0) {
      assert_counters = true;
    }
  }
  // --device {ide,busmouse,all} picks which corpus device the campaigns
  // mutate; default runs them all (Tables 3/4 per device). Passing it
  // without --threads still runs the campaigns (on one worker), so a
  // typoed device name can never exit 0 without campaigning.
  std::string device = "all";
  bool device_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--device") == 0 && i + 1 < argc) {
      device = argv[i + 1];
      device_given = true;
    }
  }
  if (device != "all") {
    bool known = false;
    for (const auto& drivers : corpus::campaign_drivers()) {
      known = known || device == drivers.device;
    }
    if (!known) {
      std::fprintf(stderr, "unknown --device '%s' (known: all",
                   device.c_str());
      for (const auto& drivers : corpus::campaign_drivers()) {
        std::fprintf(stderr, ", %s", drivers.device);
      }
      std::fprintf(stderr, ")\n");
      return 2;
    }
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return run_campaigns(
          static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10)),
          assert_counters, device);
    }
  }
  if (device_given || assert_counters) {
    return run_campaigns(1, assert_counters, device);
  }

  std::printf("Scenario: selecting the drive, the developer writes the\n"
              "IDENTIFY command byte instead of the drive-select value.\n\n");

  // --- original C driver: ATA_LBA -> WIN_IDENTIFY at the select site -----
  std::string c_driver = replace_once(
      corpus::c_ide_driver(), "outb(ATA_LBA, IDE_SELECT);",
      "outb(WIN_IDENTIFY, IDE_SELECT);");
  report("[1] C driver, `outb(WIN_IDENTIFY, IDE_SELECT)`:", "ide_c.c",
         c_driver);

  // --- Devil driver, debug stubs: set_Drive(WIN_IDENTIFY) ----------------
  auto debug = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                   devil::CodegenMode::kDebug);
  std::string d_driver = replace_once(corpus::cdevil_ide_driver(),
                                      "set_Drive(MASTER)",
                                      "set_Drive(WIN_IDENTIFY)");
  report("[2] Devil driver (debug stubs), `set_Drive(WIN_IDENTIFY)`:",
         "ide.dil", debug.stubs + "\n" + d_driver);

  // --- Devil driver, production stubs: same typo -------------------------
  auto prod = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kProduction);
  report("[3] Devil driver (production stubs), same typo:", "ide.dil",
         prod.stubs + "\n" + d_driver);

  // --- a same-type confusion that types cannot catch ---------------------
  std::string swap = replace_once(corpus::cdevil_ide_driver(),
                                  "dil_eq(get_Busy(), BUSY)",
                                  "dil_eq(get_Seek(), BUSY)");
  report("[4] Devil driver (debug), wrong getter inside dil_eq:", "ide.dil",
         debug.stubs + "\n" + swap);

  std::printf("Summary: Devil turns silent C-level typos into compile-time\n"
              "type errors (debug stubs) or precise run-time assertions; the\n"
              "same code built with production stubs behaves like C again.\n");
  return 0;
}
