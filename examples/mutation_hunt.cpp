// Mutation hunt: injects the same classic typo into the C driver and the
// Devil driver and shows when (or whether) each toolchain notices — the
// paper's core claim in one runnable scenario.
//
// The typo: the developer confuses the drive-select value with a command
// byte (an inattention error, §3.1).
//
// With `--threads N` it additionally runs the full Tables 3/4 campaigns on
// the parallel engine (N worker threads, 0 = all cores) and prints the
// comparison — the whole paper evaluation in seconds. `--device
// {ide,busmouse,all}` picks the device under test (default: all).
//
// Campaigns also shard across processes: `--shard i/N --out FILE` runs the
// i-th of N slices of every selected campaign and writes a mergeable JSON
// artifact; `--merge FILE...` recombines one artifact per shard into output
// byte-identical to the single-process campaign run (tables, tallies and
// engine counters included). Mismatched configurations, duplicate or
// missing shards and corrupt artifacts are rejected with diagnostics.
//
// `--faults` flips the experiment: the drivers stay clean and the *device*
// misbehaves. Each selected device's C and CDevil drivers boot against the
// deterministic fault-scenario matrix (stuck bits, flipped reads, dropped
// writes, floating bus, wedged status — eval/fault_campaign.h) and the
// outcomes are bucketed Tables-3/4-style. The interrupt-driven corpora
// ("ide-irq", "busmouse-irq") add event-fault rows — lost, spurious,
// storming and delayed interrupts — where the CDevil handlers' in-service
// guards detect what classic C absorbs. Fault campaigns compose with
// `--shard`/`--merge` exactly like mutation campaigns.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/fault_campaign.h"
#include "eval/merge.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/shard.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"
#include "support/metrics.h"

namespace {

minic::ExecEngine g_engine = minic::ExecEngine::kBytecodeVm;
bool g_flight_recorder = false;
bool g_bytecode_patch = true;  // --no-bytecode-patch clears (telemetry only)
uint64_t g_watchdog_ms = 10'000;  // per-boot wall-clock cap (0 = off)
uint64_t g_start_ns = 0;  // process start, for the metrics wall clock

/// Corpus registry the fault campaigns iterate: the polled devices plus the
/// interrupt-driven variants (event-fault scenarios need a binding with an
/// IRQ line). Mutation campaigns stay on the polled corpus, so the paper's
/// Tables 3/4 are unchanged.
std::vector<corpus::CampaignDrivers> fault_corpus() {
  std::vector<corpus::CampaignDrivers> all = corpus::campaign_drivers();
  const auto& irq = corpus::irq_campaign_drivers();
  all.insert(all.end(), irq.begin(), irq.end());
  return all;
}

void report(const char* label, const std::string& name,
            const std::string& unit) {
  std::printf("%s\n", label);
  minic::Program prog = minic::compile(name, unit);
  if (!prog.ok()) {
    std::printf("  -> caught at COMPILE TIME:\n     %s\n\n",
                prog.diags.all().front().to_string().c_str());
    return;
  }
  hw::IoBus bus;
  auto disk = std::make_shared<hw::IdeDisk>();
  bus.map(0x1f0, 8, disk);
  auto out = minic::run_unit(*prog.unit, bus, "ide_boot", 3'000'000,
                             g_engine);
  switch (out.fault) {
    case minic::FaultKind::kNone:
      std::printf("  -> NOT DETECTED: kernel boots (fingerprint %lld%s)\n\n",
                  static_cast<long long>(out.return_value),
                  disk->damaged() ? ", disk damaged!" : "");
      return;
    case minic::FaultKind::kDevilAssertion:
      std::printf("  -> caught at RUN TIME by a Devil assertion:\n     %s\n\n",
                  out.fault_message.c_str());
      return;
    case minic::FaultKind::kStepLimit:
      std::printf("  -> kernel hangs (infinite loop), tedious to debug\n\n");
      return;
    default:
      std::printf("  -> kernel halts: %s\n\n", out.fault_message.c_str());
      return;
  }
}

std::string replace_once(std::string text, const std::string& from,
                         const std::string& to) {
  size_t pos = text.find(from);
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

/// The C and CDevil campaign configs for one corpus device. Shared by the
/// single-process, shard and (by fingerprint) merge paths, so every mode
/// runs the exact same campaign configuration.
struct DeviceCampaignConfigs {
  eval::DriverCampaignConfig c;
  eval::DriverCampaignConfig cdevil;
};

bool make_device_configs(const corpus::CampaignDrivers& drivers,
                         unsigned threads, DeviceCampaignConfigs* out) {
  eval::DeviceBinding binding = eval::binding_for(drivers.device);

  out->c = eval::DriverCampaignConfig{};
  out->c.driver = drivers.c_driver();
  out->c.device = binding;
  out->c.sample_percent = drivers.sample_percent;
  out->c.threads = threads;
  out->c.engine = g_engine;
  out->c.flight_recorder = g_flight_recorder;
  out->c.bytecode_patch = g_bytecode_patch;
  out->c.watchdog_ms = g_watchdog_ms;

  auto spec = devil::compile_spec(drivers.spec_file, drivers.spec(),
                                  devil::CodegenMode::kDebug);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s", spec.diags.render().c_str());
    return false;
  }
  out->cdevil = eval::DriverCampaignConfig{};
  out->cdevil.stubs = spec.stubs;
  out->cdevil.driver = drivers.cdevil_driver();
  out->cdevil.device = binding;
  out->cdevil.is_cdevil = true;
  out->cdevil.sample_percent = drivers.sample_percent;
  out->cdevil.threads = threads;
  out->cdevil.engine = g_engine;
  out->cdevil.flight_recorder = g_flight_recorder;
  out->cdevil.bytecode_patch = g_bytecode_patch;
  out->cdevil.watchdog_ms = g_watchdog_ms;
  return true;
}

/// Stamps the process section and writes the metrics artifact; maps write
/// failures to exit code 2 (like shard artifacts — same atomic write path).
int write_metrics_artifact(const std::string& path,
                           eval::MetricsArtifact artifact, unsigned threads) {
  artifact.process = eval::capture_process_metrics(
      threads, support::monotonic_ns() - g_start_ns);
  try {
    eval::save_metrics_artifact(path, artifact);
  } catch (const eval::ArtifactWriteError& e) {
    std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "wrote metrics artifact to %s\n", path.c_str());
  return 0;
}

/// The C and CDevil fault-campaign configs for one corpus device: the same
/// shared campaign configs wrapped with the default fault knobs (full
/// scenario matrix, default trigger offsets), so the fingerprint pins one
/// configuration across the single-process, shard and merge paths.
struct DeviceFaultConfigs {
  eval::FaultCampaignConfig c;
  eval::FaultCampaignConfig cdevil;
};

bool make_fault_configs(const corpus::CampaignDrivers& drivers,
                        unsigned threads, DeviceFaultConfigs* out) {
  DeviceCampaignConfigs base;
  if (!make_device_configs(drivers, threads, &base)) return false;
  out->c = eval::FaultCampaignConfig{};
  out->c.base = std::move(base.c);
  out->cdevil = eval::FaultCampaignConfig{};
  out->cdevil.base = std::move(base.cdevil);
  return true;
}

/// One device's fault-injection report section; shared by the
/// single-process run and `--merge`, so the two outputs are
/// byte-comparable.
void print_fault_section(const std::string& device,
                         const eval::FaultCampaignResult& c_res,
                         const eval::FaultCampaignResult& d_res) {
  std::printf("=== %s (fault injection) ===\n\n", device.c_str());
  std::printf("%s\n", eval::render_fault_tables(c_res, d_res).c_str());
  std::printf("Scenario counters [%s]: C triggered %zu/%zu; "
              "CDevil triggered %zu/%zu\n",
              device.c_str(), c_res.triggered_scenarios,
              c_res.sampled_scenarios, d_res.triggered_scenarios,
              d_res.sampled_scenarios);
  // Empty unless the campaign ran with --flight-recorder (traces ride in
  // the records, so the merge path prints identical post-mortems).
  std::string pm = eval::render_fault_postmortems("C", c_res, 3) +
                   eval::render_fault_postmortems("CDevil", d_res, 3);
  if (!pm.empty()) std::printf("\n%s", pm.c_str());
}

/// One device's report section. Both the single-process campaign run and
/// `--merge` print through here, so the two outputs are byte-comparable.
void print_device_section(const std::string& device,
                          const eval::DriverCampaignResult& c_res,
                          const eval::DriverCampaignResult& d_res) {
  std::printf("=== %s ===\n\n", device.c_str());
  std::printf("%s\n", eval::render_campaign_tables(c_res, d_res).c_str());
  std::printf("Engine counters [%s]: C dedup %zu/%zu, prefix-cache %zu; "
              "CDevil dedup %zu/%zu, prefix-cache %zu\n",
              device.c_str(), c_res.deduped_mutants, c_res.sampled_mutants,
              c_res.prefix_cache_hits, d_res.deduped_mutants,
              d_res.sampled_mutants, d_res.prefix_cache_hits);
  // Empty unless the campaign ran with --flight-recorder (traces ride in
  // the records, so the merge path prints identical post-mortems).
  std::string pm = eval::render_postmortems("C", c_res, 3) +
                   eval::render_postmortems("CDevil", d_res, 3);
  if (!pm.empty()) std::printf("\n%s", pm.c_str());
}

/// Runs one device's full C vs CDevil driver campaigns on `threads`
/// workers and prints the paper's Tables 3/4 plus the headline comparison.
/// With `assert_counters` (the CI Release smoke) the exit code additionally
/// verifies that the throughput machinery actually engaged: canonical
/// dedup skipped at least one mutant and the compiled-prefix cache served
/// every unique compile.
bool run_device_campaigns(const corpus::CampaignDrivers& drivers,
                          unsigned threads, bool assert_counters,
                          eval::MetricsArtifact* metrics) {
  DeviceCampaignConfigs cfgs;
  if (!make_device_configs(drivers, threads, &cfgs)) return false;
  auto c_res = eval::run_driver_campaign(cfgs.c);
  auto d_res = eval::run_driver_campaign(cfgs.cdevil);

  print_device_section(drivers.device, c_res, d_res);
  if (metrics) {
    const char* engine = minic::exec_engine_name(g_engine);
    metrics->campaigns.push_back(
        eval::campaign_metrics_row(c_res, "C", engine));
    metrics->campaigns.push_back(
        eval::campaign_metrics_row(d_res, "CDevil", engine));
  }
  if (!assert_counters) return true;
  // The walker engine compiles whole units by design, so cache hits are
  // only expected on the bytecode VM — and the bytecode patcher only runs
  // on top of the cache.
  const bool expect_cache = g_engine == minic::ExecEngine::kBytecodeVm;
  const bool expect_patch = expect_cache && g_bytecode_patch;
  auto check = [expect_cache, expect_patch, &drivers](
                   const char* what, const eval::DriverCampaignResult& r) {
    if (r.deduped_mutants == 0) {
      std::fprintf(stderr, "FAIL: %s %s campaign deduped 0 mutants\n",
                   drivers.device, what);
      return false;
    }
    size_t unique = r.sampled_mutants - r.deduped_mutants;
    if (expect_cache &&
        (r.prefix_cache_hits == 0 || r.prefix_cache_hits > unique)) {
      std::fprintf(stderr,
                   "FAIL: %s %s campaign compiled %zu of %zu unique mutants "
                   "through the prefix cache\n",
                   drivers.device, what, r.prefix_cache_hits, unique);
      return false;
    }
    // Real corpora always hold both token-local mutants (patch hits) and
    // structure-changing ones (fallbacks), and only unique mutants carry
    // either bit.
    if (expect_patch &&
        (r.patch_hits == 0 || r.patch_fallbacks == 0 ||
         r.patch_hits + r.patch_fallbacks > unique)) {
      std::fprintf(stderr,
                   "FAIL: %s %s campaign patched %zu / fell back %zu over "
                   "%zu unique mutants\n",
                   drivers.device, what, r.patch_hits, r.patch_fallbacks,
                   unique);
      return false;
    }
    return true;
  };
  return check("C", c_res) & check("CDevil", d_res);
}

/// Runs one device's C vs CDevil fault campaigns and prints the paired
/// fault tables. With `assert_counters` the exit code verifies the paper
/// shape: the faults must actually fire, and the CDevil driver must detect
/// strictly more injected hardware faults than its classic-C twin.
bool run_device_fault_campaigns(const corpus::CampaignDrivers& drivers,
                                unsigned threads, bool assert_counters,
                                eval::MetricsArtifact* metrics) {
  DeviceFaultConfigs cfgs;
  if (!make_fault_configs(drivers, threads, &cfgs)) return false;
  auto c_res = eval::run_fault_campaign(cfgs.c);
  auto d_res = eval::run_fault_campaign(cfgs.cdevil);

  print_fault_section(drivers.device, c_res, d_res);
  if (metrics) {
    const char* engine = minic::exec_engine_name(g_engine);
    metrics->fault_campaigns.push_back(
        eval::fault_metrics_row(c_res, "C", engine));
    metrics->fault_campaigns.push_back(
        eval::fault_metrics_row(d_res, "CDevil", engine));
  }
  if (!assert_counters) return true;
  bool ok = true;
  if (c_res.triggered_scenarios == 0 || d_res.triggered_scenarios == 0) {
    std::fprintf(stderr, "FAIL: %s fault campaigns triggered no faults "
                 "(C %zu, CDevil %zu)\n",
                 drivers.device, c_res.triggered_scenarios,
                 d_res.triggered_scenarios);
    ok = false;
  }
  if (d_res.tally.detected() <= c_res.tally.detected()) {
    std::fprintf(stderr, "FAIL: %s CDevil driver detected %zu injected "
                 "faults, not strictly more than the C driver's %zu\n",
                 drivers.device, d_res.tally.detected(),
                 c_res.tally.detected());
    ok = false;
  }
  // Event-driven corpora additionally assert the margin on the event rows
  // alone: the CDevil handler's in-service guard must catch interrupt
  // faults (spurious deliveries) the classic C driver absorbs silently.
  auto event_detected = [](const eval::FaultCampaignResult& r) {
    size_t n = 0;
    for (const auto& rec : r.records) {
      if (rec.plan.is_event_fault() &&
          (rec.outcome == eval::FaultOutcome::kDevilCheck ||
           rec.outcome == eval::FaultOutcome::kDriverPanic)) {
        ++n;
      }
    }
    return n;
  };
  bool has_event_rows = false;
  for (const auto& rec : c_res.records) {
    if (rec.plan.is_event_fault()) {
      has_event_rows = true;
      break;
    }
  }
  if (has_event_rows && event_detected(d_res) <= event_detected(c_res)) {
    std::fprintf(stderr, "FAIL: %s CDevil driver detected %zu event faults, "
                 "not strictly more than the C driver's %zu\n",
                 drivers.device, event_detected(d_res),
                 event_detected(c_res));
    ok = false;
  }
  return ok;
}

void print_unknown_device(const std::string& device_filter) {
  std::fprintf(stderr, "unknown --device '%s' (known: all",
               device_filter.c_str());
  for (const auto& drivers : fault_corpus()) {
    std::fprintf(stderr, ", %s", drivers.device);
  }
  std::fprintf(stderr, ")\n");
}

bool known_device(const std::string& device_filter) {
  if (device_filter == "all") return true;
  for (const auto& drivers : fault_corpus()) {
    if (device_filter == drivers.device) return true;
  }
  return false;
}

/// Runs the campaigns for every corpus device matching `device_filter`
/// ("all" runs each of them — the CI smoke path).
int run_campaigns(unsigned threads, bool assert_counters,
                  const std::string& device_filter,
                  eval::MetricsArtifact* metrics) {
  std::printf("Running full mutation campaigns (%u thread(s), 0 = all "
              "cores, %s engine, device %s)...\n\n",
              threads, minic::exec_engine_name(g_engine),
              device_filter.c_str());
  bool ok = true;
  for (const auto& drivers : corpus::campaign_drivers()) {
    if (device_filter != "all" && device_filter != drivers.device) continue;
    ok &= run_device_campaigns(drivers, threads, assert_counters, metrics);
  }
  if (assert_counters) {
    std::printf("counter assertions: %s\n", ok ? "OK" : "FAILED");
  }
  return ok ? 0 : 1;
}

/// `--faults`: runs the fault-injection campaigns for every selected
/// device.
int run_fault_campaigns(unsigned threads, bool assert_counters,
                        const std::string& device_filter,
                        eval::MetricsArtifact* metrics) {
  std::printf("Running fault-injection campaigns (%u thread(s), 0 = all "
              "cores, %s engine, device %s)...\n\n",
              threads, minic::exec_engine_name(g_engine),
              device_filter.c_str());
  bool ok = true;
  for (const auto& drivers : fault_corpus()) {
    if (device_filter != "all" && device_filter != drivers.device) continue;
    ok &= run_device_fault_campaigns(drivers, threads, assert_counters,
                                     metrics);
  }
  if (assert_counters) {
    std::printf("fault assertions: %s\n", ok ? "OK" : "FAILED");
  }
  return ok ? 0 : 1;
}

/// `--shard i/N --out FILE`: runs slice i/N of every selected campaign and
/// writes one mergeable bundle (fault campaigns with `--faults`, mutation
/// campaigns otherwise). Progress goes to stderr; stdout stays quiet so
/// shard invocations compose in scripts.
int run_shard(eval::ShardSpec spec, const std::string& out_path,
              unsigned threads, const std::string& device_filter,
              bool faults, const std::string& metrics_path) {
  eval::ShardBundle bundle;
  bundle.shard = spec;
  const std::vector<corpus::CampaignDrivers> corpus_list =
      faults ? fault_corpus() : corpus::campaign_drivers();
  for (const auto& drivers : corpus_list) {
    if (device_filter != "all" && device_filter != drivers.device) continue;
    if (faults) {
      DeviceFaultConfigs cfgs;
      if (!make_fault_configs(drivers, threads, &cfgs)) return 1;
      bundle.fault_campaigns.push_back(
          eval::run_fault_campaign_shard(cfgs.c, "C", spec));
      bundle.fault_campaigns.push_back(
          eval::run_fault_campaign_shard(cfgs.cdevil, "CDevil", spec));
      const auto& c =
          bundle.fault_campaigns[bundle.fault_campaigns.size() - 2];
      const auto& d = bundle.fault_campaigns.back();
      std::fprintf(stderr,
                   "shard %s [%s faults]: C records %zu of %zu sampled, "
                   "CDevil records %zu of %zu sampled\n",
                   spec.to_string().c_str(), drivers.device, c.records.size(),
                   c.sample_size, d.records.size(), d.sample_size);
      continue;
    }
    DeviceCampaignConfigs cfgs;
    if (!make_device_configs(drivers, threads, &cfgs)) return 1;
    bundle.campaigns.push_back(
        eval::run_campaign_shard(cfgs.c, "C", spec));
    bundle.campaigns.push_back(
        eval::run_campaign_shard(cfgs.cdevil, "CDevil", spec));
    const auto& c = bundle.campaigns[bundle.campaigns.size() - 2];
    const auto& d = bundle.campaigns.back();
    std::fprintf(stderr,
                 "shard %s [%s]: C records %zu of %zu sampled, "
                 "CDevil records %zu of %zu sampled\n",
                 spec.to_string().c_str(), drivers.device, c.records.size(),
                 c.sample_size, d.records.size(), d.sample_size);
  }
  if (!metrics_path.empty()) {
    // Embed the process timings in the bundle (so --merge can aggregate
    // them across the shard fleet) ...
    bundle.has_metrics = true;
    bundle.metrics = eval::capture_process_metrics(
        threads, support::monotonic_ns() - g_start_ns);
  }
  eval::save_shard_bundle(out_path, bundle);
  std::fprintf(stderr, "wrote shard %s artifact to %s\n",
               spec.to_string().c_str(), out_path.c_str());
  if (!metrics_path.empty()) {
    // ... and write this shard's own metrics artifact (deterministic rows
    // are shard-local: they cover this slice only).
    eval::MetricsArtifact artifact;
    for (const eval::ShardArtifact& a : bundle.campaigns) {
      artifact.campaigns.push_back(eval::shard_metrics_row(a));
    }
    for (const eval::FaultShardArtifact& a : bundle.fault_campaigns) {
      artifact.fault_campaigns.push_back(eval::shard_fault_metrics_row(a));
    }
    artifact.process = bundle.metrics;
    try {
      eval::save_metrics_artifact(metrics_path, artifact);
    } catch (const eval::ArtifactWriteError& e) {
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 2;
    }
    std::fprintf(stderr, "wrote metrics artifact to %s\n",
                 metrics_path.c_str());
  }
  return 0;
}

/// `--merge FILE...`: loads one bundle per shard, recombines them and
/// prints the same per-device sections as the single-process campaign run.
int run_merge(const std::vector<std::string>& paths,
              const std::string& metrics_path) {
  std::vector<eval::ShardBundle> bundles;
  bundles.reserve(paths.size());
  for (const std::string& path : paths) {
    bundles.push_back(eval::load_shard_bundle(path));
  }
  auto merged = eval::merge_shard_bundles(bundles);
  // Standard bundles carry a C campaign followed by a CDevil campaign per
  // device; print those as the paper's paired tables. Anything else (a
  // hand-built bundle) still renders, one table per campaign.
  size_t i = 0;
  while (i < merged.size()) {
    if (i + 1 < merged.size() && merged[i].device == merged[i + 1].device &&
        merged[i].label == "C" && merged[i + 1].label == "CDevil") {
      print_device_section(merged[i].device, merged[i].result,
                           merged[i + 1].result);
      i += 2;
      continue;
    }
    std::printf("=== %s ===\n\n", merged[i].device.c_str());
    std::printf("%s\n",
                eval::render_driver_table("Campaign " + merged[i].label +
                                              " (" + merged[i].device + ")",
                                          merged[i].result)
                    .c_str());
    ++i;
  }
  // Fault campaigns merge and print the same way, after the mutation
  // sections (a `--faults` shard bundle carries only fault campaigns, so
  // the loop above printed nothing for it).
  auto fault_merged = eval::merge_fault_bundles(bundles);
  i = 0;
  while (i < fault_merged.size()) {
    if (i + 1 < fault_merged.size() &&
        fault_merged[i].device == fault_merged[i + 1].device &&
        fault_merged[i].label == "C" &&
        fault_merged[i + 1].label == "CDevil") {
      print_fault_section(fault_merged[i].device, fault_merged[i].result,
                          fault_merged[i + 1].result);
      i += 2;
      continue;
    }
    std::printf("=== %s (fault injection) ===\n\n",
                fault_merged[i].device.c_str());
    std::printf("%s\n",
                eval::render_fault_table("Fault campaign " +
                                             fault_merged[i].label + " (" +
                                             fault_merged[i].device + ")",
                                         fault_merged[i].result)
                    .c_str());
    ++i;
  }
  if (!metrics_path.empty()) {
    // Deterministic rows come from the merged results — byte-identical to
    // the single-process run's rows (the merge guarantee extends to steps
    // and baseline telemetry). Timings are the aggregate of whatever the
    // shard bundles embedded.
    eval::MetricsArtifact artifact;
    for (const auto& m : merged) {
      artifact.campaigns.push_back(
          eval::campaign_metrics_row(m.result, m.label, m.engine));
    }
    for (const auto& m : fault_merged) {
      artifact.fault_campaigns.push_back(
          eval::fault_metrics_row(m.result, m.label, m.engine));
    }
    eval::merge_bundle_metrics(bundles, &artifact.process);
    try {
      eval::save_metrics_artifact(metrics_path, artifact);
    } catch (const eval::ArtifactWriteError& e) {
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 2;
    }
    std::fprintf(stderr, "wrote metrics artifact to %s\n",
                 metrics_path.c_str());
  }
  return 0;
}

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: mutation_hunt [MODE] [OPTIONS]\n"
      "\n"
      "Modes (default: run the single-typo scenario):\n"
      "  --threads N          run the Tables 3/4 campaigns on N workers\n"
      "                       (0 = all cores)\n"
      "  --faults             run the fault-injection campaigns instead:\n"
      "                       clean drivers against the deterministic\n"
      "                       hardware-fault scenario matrix\n"
      "  --shard I/N --out F  run slice I of N of every selected campaign\n"
      "                       and write a mergeable shard artifact to F\n"
      "                       (fault campaigns when --faults is given)\n"
      "  --merge FILE...      merge one artifact per shard and print the\n"
      "                       single-process campaign report\n"
      "\n"
      "Options:\n"
      "  --device NAME        campaign device (default: all)\n"
      "  --list-devices       print the campaign device names, one per\n"
      "                       line; after --faults, lists the fault-campaign\n"
      "                       corpus (adds the interrupt-driven devices)\n"
      "  --walker             use the tree-walker oracle engine\n"
      "  --metrics FILE       write a campaign metrics artifact to FILE:\n"
      "                       deterministic counters (steps, opcode\n"
      "                       profiles, tallies — byte-identical at any\n"
      "                       thread count and across shard merges) plus\n"
      "                       process timings; composes with --faults,\n"
      "                       --shard (also embeds timings in the bundle)\n"
      "                       and --merge (aggregates embedded timings)\n"
      "  --watchdog-ms N      wall-clock cap per boot in milliseconds; a\n"
      "                       boot past the cap classifies as a hang and\n"
      "                       counts a watchdog trip in the metrics timings\n"
      "                       (default 10000; 0 disables the watchdog)\n"
      "  --progress           throttled records/s + ETA heartbeat on stderr\n"
      "  --flight-recorder    record each boot's last port accesses and\n"
      "                       attach the post-mortem tail to every\n"
      "                       non-clean record\n"
      "  --no-bytecode-patch  recompile every mutant instead of booting\n"
      "                       token-local mutants from a patched copy of\n"
      "                       the clean tail bytecode; outcomes are\n"
      "                       byte-identical either way (only the patch\n"
      "                       telemetry counters move)\n"
      "  --assert-counters    fail unless dedup + prefix cache engaged\n"
      "                       (and, unless --no-bytecode-patch/--walker,\n"
      "                       bytecode patching both hit and fell back)\n"
      "                       (with --faults: fail unless faults fired and\n"
      "                       CDevil detected strictly more than C)\n"
      "  --help               this message\n");
  return to == stdout ? 0 : 2;
}

[[nodiscard]] int flag_error(const std::string& message) {
  std::fprintf(stderr, "mutation_hunt: %s\n\n", message.c_str());
  return usage(stderr);
}

}  // namespace

int main(int argc, char** argv) {
  g_start_ns = support::monotonic_ns();
  unsigned threads = 1;
  bool threads_given = false;
  std::string device = "all";
  bool device_given = false;
  bool assert_counters = false;
  std::string shard_spec_text;
  std::string out_path;
  std::string metrics_path;
  std::vector<std::string> merge_paths;
  bool merge_given = false;
  bool faults = false;

  // Strict flag parsing: an unrecognised flag is a hard error with a usage
  // message, never silently ignored — a typoed `--theads 8` must not
  // quietly run the default scenario and exit 0.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    if (arg == "--walker") {
      g_engine = minic::ExecEngine::kTreeWalker;
    } else if (arg == "--progress") {
      support::ProgressMeter::set_enabled(true);
    } else if (arg == "--flight-recorder") {
      g_flight_recorder = true;
    } else if (arg == "--no-bytecode-patch") {
      g_bytecode_patch = false;
    } else if (arg == "--metrics") {
      const char* v = value("--metrics");
      if (!v) return flag_error("--metrics needs a file path");
      metrics_path = v;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--assert-counters") {
      assert_counters = true;
    } else if (arg == "--threads") {
      const char* v = value("--threads");
      if (!v) return flag_error("--threads needs a value");
      // Digits only: strtoul would silently wrap a leading '-' and clamp
      // out-of-range values, defeating the strict parser. A worker count
      // never needs more than 4 digits.
      const std::string text = v;
      const bool digits =
          !text.empty() && text.size() <= 4 &&
          text.find_first_not_of("0123456789") == std::string::npos;
      if (!digits) {
        return flag_error("--threads: '" + text +
                          "' is not a thread count (0-9999; 0 = all cores)");
      }
      threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      threads_given = true;
    } else if (arg == "--device") {
      const char* v = value("--device");
      if (!v) return flag_error("--device needs a value");
      device = v;
      device_given = true;
    } else if (arg == "--shard") {
      const char* v = value("--shard");
      if (!v) return flag_error("--shard needs a value (e.g. 1/3)");
      shard_spec_text = v;
    } else if (arg == "--out") {
      const char* v = value("--out");
      if (!v) return flag_error("--out needs a file path");
      out_path = v;
    } else if (arg == "--merge") {
      merge_given = true;
      // Everything after --merge is an artifact path; a flag-shaped arg
      // here is almost certainly a misplaced option, not a file, and gets
      // the strict-parser treatment (prefix genuine `--foo` files with ./).
      while (i + 1 < argc) {
        const std::string path = argv[++i];
        if (path.rfind("--", 0) == 0) {
          return flag_error("'" + path + "' after --merge: flags must come "
                            "before --merge (artifact files only from here; "
                            "prefix a file literally named like a flag "
                            "with ./)");
        }
        merge_paths.push_back(path);
      }
    } else if (arg == "--watchdog-ms") {
      const char* v = value("--watchdog-ms");
      if (!v) return flag_error("--watchdog-ms needs a value (0 = off)");
      const std::string text = v;
      const bool digits =
          !text.empty() && text.size() <= 8 &&
          text.find_first_not_of("0123456789") == std::string::npos;
      if (!digits) {
        return flag_error("--watchdog-ms: '" + text +
                          "' is not a millisecond count (0-99999999; "
                          "0 disables the watchdog)");
      }
      g_watchdog_ms = std::strtoul(v, nullptr, 10);
    } else if (arg == "--list-devices") {
      // One name per line, so CI scripts can iterate the corpus registry
      // instead of hardcoding the device list. Mode-aware: after --faults
      // the listing is the fault-campaign corpus, which appends the
      // interrupt-driven devices to the polled mutation corpus.
      const std::vector<corpus::CampaignDrivers> listed =
          faults ? fault_corpus() : corpus::campaign_drivers();
      for (const auto& drivers : listed) {
        std::printf("%s\n", drivers.device);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(stdout);
    } else {
      return flag_error("unknown flag '" + arg + "'");
    }
  }

  // `--metrics` turns the telemetry collector on for the rest of the run
  // (instrumentation points are single relaxed atomic loads otherwise).
  if (!metrics_path.empty()) support::Metrics::set_enabled(true);

  if (merge_given) {
    if (threads_given || device_given || assert_counters || faults ||
        !shard_spec_text.empty() || !out_path.empty() ||
        g_engine != minic::ExecEngine::kBytecodeVm) {
      return flag_error("--merge takes only artifact files and --metrics "
                        "(the merged report is determined by the artifacts "
                        "themselves)");
    }
    if (merge_paths.empty()) {
      return flag_error("--merge needs at least one artifact file");
    }
    try {
      return run_merge(merge_paths, metrics_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 1;
    }
  }

  if (!out_path.empty() && shard_spec_text.empty()) {
    return flag_error("--out only makes sense with --shard I/N");
  }
  // A typoed device name exits 2 before any campaigning starts.
  if (!known_device(device)) {
    print_unknown_device(device);
    return 2;
  }

  if (!shard_spec_text.empty()) {
    if (out_path.empty()) {
      return flag_error("--shard needs --out FILE for the artifact");
    }
    if (assert_counters) {
      return flag_error("--assert-counters applies to full campaign runs, "
                        "not shards (counters are shard-local; merge the "
                        "artifacts instead)");
    }
    eval::ShardSpec spec;
    try {
      spec = eval::parse_shard_spec(shard_spec_text);
    } catch (const std::invalid_argument& e) {
      return flag_error(e.what());
    }
    try {
      return run_shard(spec, out_path, threads, device, faults, metrics_path);
    } catch (const eval::ArtifactWriteError& e) {
      // The artifact could not be written (unwritable path, full disk):
      // exit 2 like the other preflight failures, never a partial file.
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 1;
    }
  }

  // `--metrics` implies campaign mode, like `--device`: the telemetry
  // subsystem instruments the campaign kernels, not the typo scenario.
  const bool campaign_mode = threads_given || device_given ||
                             assert_counters || !metrics_path.empty();
  if (faults || campaign_mode) {
    eval::MetricsArtifact artifact;
    eval::MetricsArtifact* metrics =
        metrics_path.empty() ? nullptr : &artifact;
    const unsigned campaign_threads = threads_given ? threads : 1;
    int rc = faults ? run_fault_campaigns(campaign_threads, assert_counters,
                                          device, metrics)
                    : run_campaigns(campaign_threads, assert_counters, device,
                                    metrics);
    if (metrics) {
      int metrics_rc = write_metrics_artifact(metrics_path,
                                              std::move(artifact),
                                              campaign_threads);
      if (metrics_rc != 0) return metrics_rc;
    }
    return rc;
  }

  std::printf("Scenario: selecting the drive, the developer writes the\n"
              "IDENTIFY command byte instead of the drive-select value.\n\n");

  // --- original C driver: ATA_LBA -> WIN_IDENTIFY at the select site -----
  std::string c_driver = replace_once(
      corpus::c_ide_driver(), "outb(ATA_LBA, IDE_SELECT);",
      "outb(WIN_IDENTIFY, IDE_SELECT);");
  report("[1] C driver, `outb(WIN_IDENTIFY, IDE_SELECT)`:", "ide_c.c",
         c_driver);

  // --- Devil driver, debug stubs: set_Drive(WIN_IDENTIFY) ----------------
  auto debug = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                   devil::CodegenMode::kDebug);
  std::string d_driver = replace_once(corpus::cdevil_ide_driver(),
                                      "set_Drive(MASTER)",
                                      "set_Drive(WIN_IDENTIFY)");
  report("[2] Devil driver (debug stubs), `set_Drive(WIN_IDENTIFY)`:",
         "ide.dil", debug.stubs + "\n" + d_driver);

  // --- Devil driver, production stubs: same typo -------------------------
  auto prod = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kProduction);
  report("[3] Devil driver (production stubs), same typo:", "ide.dil",
         prod.stubs + "\n" + d_driver);

  // --- a same-type confusion that types cannot catch ---------------------
  std::string swap = replace_once(corpus::cdevil_ide_driver(),
                                  "dil_eq(get_Busy(), BUSY)",
                                  "dil_eq(get_Seek(), BUSY)");
  report("[4] Devil driver (debug), wrong getter inside dil_eq:", "ide.dil",
         debug.stubs + "\n" + swap);

  std::printf("Summary: Devil turns silent C-level typos into compile-time\n"
              "type errors (debug stubs) or precise run-time assertions; the\n"
              "same code built with production stubs behaves like C again.\n");
  return 0;
}
