// Mutation hunt: injects the same classic typo into the C driver and the
// Devil driver and shows when (or whether) each toolchain notices — the
// paper's core claim in one runnable scenario.
//
// The typo: the developer confuses the drive-select value with a command
// byte (an inattention error, §3.1).
#include <cstdio>
#include <memory>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"

namespace {

void report(const char* label, const std::string& name,
            const std::string& unit) {
  std::printf("%s\n", label);
  minic::Program prog = minic::compile(name, unit);
  if (!prog.ok()) {
    std::printf("  -> caught at COMPILE TIME:\n     %s\n\n",
                prog.diags.all().front().to_string().c_str());
    return;
  }
  hw::IoBus bus;
  auto disk = std::make_shared<hw::IdeDisk>();
  bus.map(0x1f0, 8, disk);
  minic::Interp interp(*prog.unit, bus, 3'000'000);
  auto out = interp.run("ide_boot");
  switch (out.fault) {
    case minic::FaultKind::kNone:
      std::printf("  -> NOT DETECTED: kernel boots (fingerprint %lld%s)\n\n",
                  static_cast<long long>(out.return_value),
                  disk->damaged() ? ", disk damaged!" : "");
      return;
    case minic::FaultKind::kDevilAssertion:
      std::printf("  -> caught at RUN TIME by a Devil assertion:\n     %s\n\n",
                  out.fault_message.c_str());
      return;
    case minic::FaultKind::kStepLimit:
      std::printf("  -> kernel hangs (infinite loop), tedious to debug\n\n");
      return;
    default:
      std::printf("  -> kernel halts: %s\n\n", out.fault_message.c_str());
      return;
  }
}

std::string replace_once(std::string text, const std::string& from,
                         const std::string& to) {
  size_t pos = text.find(from);
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

}  // namespace

int main() {
  std::printf("Scenario: selecting the drive, the developer writes the\n"
              "IDENTIFY command byte instead of the drive-select value.\n\n");

  // --- original C driver: ATA_LBA -> WIN_IDENTIFY at the select site -----
  std::string c_driver = replace_once(
      corpus::c_ide_driver(), "outb(ATA_LBA, IDE_SELECT);",
      "outb(WIN_IDENTIFY, IDE_SELECT);");
  report("[1] C driver, `outb(WIN_IDENTIFY, IDE_SELECT)`:", "ide_c.c",
         c_driver);

  // --- Devil driver, debug stubs: set_Drive(WIN_IDENTIFY) ----------------
  auto debug = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                   devil::CodegenMode::kDebug);
  std::string d_driver = replace_once(corpus::cdevil_ide_driver(),
                                      "set_Drive(MASTER)",
                                      "set_Drive(WIN_IDENTIFY)");
  report("[2] Devil driver (debug stubs), `set_Drive(WIN_IDENTIFY)`:",
         "ide.dil", debug.stubs + "\n" + d_driver);

  // --- Devil driver, production stubs: same typo -------------------------
  auto prod = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kProduction);
  report("[3] Devil driver (production stubs), same typo:", "ide.dil",
         prod.stubs + "\n" + d_driver);

  // --- a same-type confusion that types cannot catch ---------------------
  std::string swap = replace_once(corpus::cdevil_ide_driver(),
                                  "dil_eq(get_Busy(), BUSY)",
                                  "dil_eq(get_Seek(), BUSY)");
  report("[4] Devil driver (debug), wrong getter inside dil_eq:", "ide.dil",
         debug.stubs + "\n" + swap);

  std::printf("Summary: Devil turns silent C-level typos into compile-time\n"
              "type errors (debug stubs) or precise run-time assertions; the\n"
              "same code built with production stubs behaves like C again.\n");
  return 0;
}
