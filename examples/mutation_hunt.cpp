// Mutation hunt: injects the same classic typo into the C driver and the
// Devil driver and shows when (or whether) each toolchain notices — the
// paper's core claim in one runnable scenario.
//
// The typo: the developer confuses the drive-select value with a command
// byte (an inattention error, §3.1).
//
// With `--threads N` it additionally runs the full Tables 3/4 campaigns on
// the parallel engine (N worker threads, 0 = all cores) and prints the
// comparison — the whole paper evaluation in seconds. `--device
// {ide,busmouse,all}` picks the device under test (default: all).
//
// Every campaign entry point consumes one eval::CampaignSpec: the flag
// parser below fills the spec through the shared flag table
// (eval/campaign_spec.h), the same table the campaign service uses to
// rebuild worker argv — so flag -> spec field lives in exactly one place.
//
// Campaigns also shard across processes: `--shard i/N --out FILE` runs the
// i-th of N slices of every selected campaign and writes a mergeable JSON
// artifact; `--merge FILE...` recombines one artifact per shard into output
// byte-identical to the single-process campaign run (tables, tallies and
// engine counters included). Mismatched configurations, duplicate or
// missing shards and corrupt artifacts are rejected with diagnostics.
//
// `--faults` flips the experiment: the drivers stay clean and the *device*
// misbehaves. Each selected device's C and CDevil drivers boot against the
// deterministic fault-scenario matrix (stuck bits, flipped reads, dropped
// writes, floating bus, wedged status — eval/fault_campaign.h) and the
// outcomes are bucketed Tables-3/4-style. The interrupt-driven corpora
// ("ide-irq", "busmouse-irq") add event-fault rows — lost, spurious,
// storming and delayed interrupts — where the CDevil handlers' in-service
// guards detect what classic C absorbs. Fault campaigns compose with
// `--shard`/`--merge` exactly like mutation campaigns.
//
// `--spec-campaign` runs the Table 2 experiment instead: mutate the Devil
// specifications themselves and count what the Devil compiler rejects.
//
// `--serve ENDPOINT` turns the binary into a long-running campaign daemon
// (src/serve): clients submit campaign requests over a socket, each job
// fans out to `--shard` worker subprocesses of this same binary, and the
// merged report streams back byte-identical to the single-process run.
// `--dispatch ENDPOINT` is the matching client: the campaign flags build
// the request spec, the served report prints on stdout and a one-line
// cache/fan-out telemetry summary prints on stderr.
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "corpus/drivers.h"
#include "corpus/specs.h"
#include "devil/compiler.h"
#include "eval/campaign_spec.h"
#include "eval/device_bindings.h"
#include "eval/driver_campaign.h"
#include "eval/fault_campaign.h"
#include "eval/merge.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/shard.h"
#include "eval/spec_campaign.h"
#include "hw/ide_disk.h"
#include "hw/io_bus.h"
#include "minic/program.h"
#include "serve/campaign_service.h"
#include "serve/dispatcher.h"
#include "serve/wire.h"
#include "support/metrics.h"
#include "support/subprocess.h"

namespace {

uint64_t g_start_ns = 0;  // process start, for the metrics wall clock

void report(const char* label, const std::string& name,
            const std::string& unit, minic::ExecEngine engine) {
  std::printf("%s\n", label);
  minic::Program prog = minic::compile(name, unit);
  if (!prog.ok()) {
    std::printf("  -> caught at COMPILE TIME:\n     %s\n\n",
                prog.diags.all().front().to_string().c_str());
    return;
  }
  hw::IoBus bus;
  auto disk = std::make_shared<hw::IdeDisk>();
  bus.map(0x1f0, 8, disk);
  auto out = minic::run_unit(*prog.unit, bus, "ide_boot", 3'000'000, engine);
  switch (out.fault) {
    case minic::FaultKind::kNone:
      std::printf("  -> NOT DETECTED: kernel boots (fingerprint %lld%s)\n\n",
                  static_cast<long long>(out.return_value),
                  disk->damaged() ? ", disk damaged!" : "");
      return;
    case minic::FaultKind::kDevilAssertion:
      std::printf("  -> caught at RUN TIME by a Devil assertion:\n     %s\n\n",
                  out.fault_message.c_str());
      return;
    case minic::FaultKind::kStepLimit:
      std::printf("  -> kernel hangs (infinite loop), tedious to debug\n\n");
      return;
    default:
      std::printf("  -> kernel halts: %s\n\n", out.fault_message.c_str());
      return;
  }
}

std::string replace_once(std::string text, const std::string& from,
                         const std::string& to) {
  size_t pos = text.find(from);
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

/// Stamps the process section and writes the metrics artifact; maps write
/// failures to exit code 2 (like shard artifacts — same atomic write path).
int write_metrics_artifact(const std::string& path,
                           eval::MetricsArtifact artifact, unsigned threads) {
  artifact.process = eval::capture_process_metrics(
      threads, support::monotonic_ns() - g_start_ns);
  try {
    eval::save_metrics_artifact(path, artifact);
  } catch (const eval::ArtifactWriteError& e) {
    std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr, "wrote metrics artifact to %s\n", path.c_str());
  return 0;
}

/// Runs one device's full C vs CDevil driver campaigns from the spec and
/// prints the paper's Tables 3/4 plus the headline comparison. With
/// `assert_counters` (the CI Release smoke) the exit code additionally
/// verifies that the throughput machinery actually engaged: canonical
/// dedup skipped at least one mutant and the compiled-prefix cache served
/// every unique compile.
bool run_device_campaigns(const eval::CampaignSpec& spec,
                          const corpus::CampaignDrivers& drivers,
                          bool assert_counters,
                          eval::MetricsArtifact* metrics) {
  eval::DeviceCampaignConfigs cfgs;
  try {
    cfgs = eval::driver_configs_for(spec, drivers);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "%s", e.what());
    return false;
  }
  auto c_res = eval::run_driver_campaign(cfgs.c);
  auto d_res = eval::run_driver_campaign(cfgs.cdevil);

  std::fputs(
      eval::render_device_section(drivers.device, c_res, d_res).c_str(),
      stdout);
  if (metrics) {
    const char* engine = minic::exec_engine_name(spec.engine);
    metrics->campaigns.push_back(
        eval::campaign_metrics_row(c_res, "C", engine));
    metrics->campaigns.push_back(
        eval::campaign_metrics_row(d_res, "CDevil", engine));
  }
  if (!assert_counters) return true;
  // The walker engine compiles whole units by design, so cache hits are
  // only expected on the bytecode VM — and the bytecode patcher only runs
  // on top of the cache.
  const bool expect_cache = spec.engine == minic::ExecEngine::kBytecodeVm;
  const bool expect_patch = expect_cache && spec.bytecode_patch;
  auto check = [expect_cache, expect_patch, &drivers](
                   const char* what, const eval::DriverCampaignResult& r) {
    if (r.deduped_mutants == 0) {
      std::fprintf(stderr, "FAIL: %s %s campaign deduped 0 mutants\n",
                   drivers.device, what);
      return false;
    }
    size_t unique = r.sampled_mutants - r.deduped_mutants;
    if (expect_cache &&
        (r.prefix_cache_hits == 0 || r.prefix_cache_hits > unique)) {
      std::fprintf(stderr,
                   "FAIL: %s %s campaign compiled %zu of %zu unique mutants "
                   "through the prefix cache\n",
                   drivers.device, what, r.prefix_cache_hits, unique);
      return false;
    }
    // Real corpora always hold both token-local mutants (patch hits) and
    // structure-changing ones (fallbacks), and only unique mutants carry
    // either bit.
    if (expect_patch &&
        (r.patch_hits == 0 || r.patch_fallbacks == 0 ||
         r.patch_hits + r.patch_fallbacks > unique)) {
      std::fprintf(stderr,
                   "FAIL: %s %s campaign patched %zu / fell back %zu over "
                   "%zu unique mutants\n",
                   drivers.device, what, r.patch_hits, r.patch_fallbacks,
                   unique);
      return false;
    }
    return true;
  };
  return check("C", c_res) & check("CDevil", d_res);
}

/// Runs one device's C vs CDevil fault campaigns and prints the paired
/// fault tables. With `assert_counters` the exit code verifies the paper
/// shape: the faults must actually fire, and the CDevil driver must detect
/// strictly more injected hardware faults than its classic-C twin.
bool run_device_fault_campaigns(const eval::CampaignSpec& spec,
                                const corpus::CampaignDrivers& drivers,
                                bool assert_counters,
                                eval::MetricsArtifact* metrics) {
  eval::DeviceFaultConfigs cfgs;
  try {
    cfgs = eval::fault_configs_for(spec, drivers);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "%s", e.what());
    return false;
  }
  auto c_res = eval::run_fault_campaign(cfgs.c);
  auto d_res = eval::run_fault_campaign(cfgs.cdevil);

  std::fputs(
      eval::render_fault_section(drivers.device, c_res, d_res).c_str(),
      stdout);
  if (metrics) {
    const char* engine = minic::exec_engine_name(spec.engine);
    metrics->fault_campaigns.push_back(
        eval::fault_metrics_row(c_res, "C", engine));
    metrics->fault_campaigns.push_back(
        eval::fault_metrics_row(d_res, "CDevil", engine));
  }
  if (!assert_counters) return true;
  bool ok = true;
  if (c_res.triggered_scenarios == 0 || d_res.triggered_scenarios == 0) {
    std::fprintf(stderr, "FAIL: %s fault campaigns triggered no faults "
                 "(C %zu, CDevil %zu)\n",
                 drivers.device, c_res.triggered_scenarios,
                 d_res.triggered_scenarios);
    ok = false;
  }
  if (d_res.tally.detected() <= c_res.tally.detected()) {
    std::fprintf(stderr, "FAIL: %s CDevil driver detected %zu injected "
                 "faults, not strictly more than the C driver's %zu\n",
                 drivers.device, d_res.tally.detected(),
                 c_res.tally.detected());
    ok = false;
  }
  // Event-driven corpora additionally assert the margin on the event rows
  // alone: the CDevil handler's in-service guard must catch interrupt
  // faults (spurious deliveries) the classic C driver absorbs silently.
  auto event_detected = [](const eval::FaultCampaignResult& r) {
    size_t n = 0;
    for (const auto& rec : r.records) {
      if (rec.plan.is_event_fault() &&
          (rec.outcome == eval::FaultOutcome::kDevilCheck ||
           rec.outcome == eval::FaultOutcome::kDriverPanic)) {
        ++n;
      }
    }
    return n;
  };
  bool has_event_rows = false;
  for (const auto& rec : c_res.records) {
    if (rec.plan.is_event_fault()) {
      has_event_rows = true;
      break;
    }
  }
  if (has_event_rows && event_detected(d_res) <= event_detected(c_res)) {
    std::fprintf(stderr, "FAIL: %s CDevil driver detected %zu event faults, "
                 "not strictly more than the C driver's %zu\n",
                 drivers.device, event_detected(d_res),
                 event_detected(c_res));
    ok = false;
  }
  return ok;
}

/// Runs the campaigns for every corpus device the spec selects
/// (`spec.device` "all" runs each of them — the CI smoke path).
int run_campaigns(const eval::CampaignSpec& spec, bool assert_counters,
                  eval::MetricsArtifact* metrics) {
  std::printf("Running full mutation campaigns (%u thread(s), 0 = all "
              "cores, %s engine, device %s)...\n\n",
              spec.threads, minic::exec_engine_name(spec.engine),
              spec.device.c_str());
  bool ok = true;
  for (const auto& drivers : eval::campaign_spec_corpus(spec)) {
    ok &= run_device_campaigns(spec, drivers, assert_counters, metrics);
  }
  if (assert_counters) {
    std::printf("counter assertions: %s\n", ok ? "OK" : "FAILED");
  }
  return ok ? 0 : 1;
}

/// `--faults`: runs the fault-injection campaigns for every selected
/// device.
int run_fault_campaigns(const eval::CampaignSpec& spec, bool assert_counters,
                        eval::MetricsArtifact* metrics) {
  std::printf("Running fault-injection campaigns (%u thread(s), 0 = all "
              "cores, %s engine, device %s)...\n\n",
              spec.threads, minic::exec_engine_name(spec.engine),
              spec.device.c_str());
  bool ok = true;
  for (const auto& drivers : eval::campaign_spec_corpus(spec)) {
    ok &= run_device_fault_campaigns(spec, drivers, assert_counters, metrics);
  }
  if (assert_counters) {
    std::printf("fault assertions: %s\n", ok ? "OK" : "FAILED");
  }
  return ok ? 0 : 1;
}

/// `--spec-campaign`: Table 2 — mutate the Devil specifications themselves
/// and count what the Devil compiler rejects.
int run_spec_campaigns(const eval::CampaignSpec& spec) {
  std::printf("Running spec mutation campaigns (%u thread(s), 0 = all "
              "cores)...\n\n",
              spec.threads);
  eval::SpecCampaignConfig config = eval::spec_campaign_config_for(spec);
  std::vector<eval::SpecCampaignRow> rows;
  for (const auto& entry : corpus::all_specs()) {
    rows.push_back(eval::run_spec_campaign(entry, config));
  }
  std::fputs(eval::render_table2(rows).c_str(), stdout);
  return 0;
}

/// `--shard i/N --out FILE`: runs slice i/N of every selected campaign and
/// writes one mergeable bundle (fault campaigns when the spec says so,
/// mutation campaigns otherwise). Progress goes to stderr; stdout stays
/// quiet so shard invocations compose in scripts.
int run_shard(const eval::CampaignSpec& campaign, eval::ShardSpec spec,
              const std::string& out_path, const std::string& metrics_path) {
  eval::ShardBundle bundle;
  bundle.shard = spec;
  const bool faults = campaign.kind == eval::CampaignKind::kFault;
  for (const auto& drivers : eval::campaign_spec_corpus(campaign)) {
    if (faults) {
      eval::DeviceFaultConfigs cfgs;
      try {
        cfgs = eval::fault_configs_for(campaign, drivers);
      } catch (const std::runtime_error& e) {
        std::fprintf(stderr, "%s", e.what());
        return 1;
      }
      bundle.fault_campaigns.push_back(
          eval::run_fault_campaign_shard(cfgs.c, "C", spec));
      bundle.fault_campaigns.push_back(
          eval::run_fault_campaign_shard(cfgs.cdevil, "CDevil", spec));
      const auto& c =
          bundle.fault_campaigns[bundle.fault_campaigns.size() - 2];
      const auto& d = bundle.fault_campaigns.back();
      std::fprintf(stderr,
                   "shard %s [%s faults]: C records %zu of %zu sampled, "
                   "CDevil records %zu of %zu sampled\n",
                   spec.to_string().c_str(), drivers.device, c.records.size(),
                   c.sample_size, d.records.size(), d.sample_size);
      continue;
    }
    eval::DeviceCampaignConfigs cfgs;
    try {
      cfgs = eval::driver_configs_for(campaign, drivers);
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr, "%s", e.what());
      return 1;
    }
    bundle.campaigns.push_back(
        eval::run_campaign_shard(cfgs.c, "C", spec));
    bundle.campaigns.push_back(
        eval::run_campaign_shard(cfgs.cdevil, "CDevil", spec));
    const auto& c = bundle.campaigns[bundle.campaigns.size() - 2];
    const auto& d = bundle.campaigns.back();
    std::fprintf(stderr,
                 "shard %s [%s]: C records %zu of %zu sampled, "
                 "CDevil records %zu of %zu sampled\n",
                 spec.to_string().c_str(), drivers.device, c.records.size(),
                 c.sample_size, d.records.size(), d.sample_size);
  }
  if (!metrics_path.empty()) {
    // Embed the process timings in the bundle (so --merge can aggregate
    // them across the shard fleet) ...
    bundle.has_metrics = true;
    bundle.metrics = eval::capture_process_metrics(
        campaign.threads, support::monotonic_ns() - g_start_ns);
  }
  eval::save_shard_bundle(out_path, bundle);
  std::fprintf(stderr, "wrote shard %s artifact to %s\n",
               spec.to_string().c_str(), out_path.c_str());
  if (!metrics_path.empty()) {
    // ... and write this shard's own metrics artifact (deterministic rows
    // are shard-local: they cover this slice only).
    eval::MetricsArtifact artifact;
    for (const eval::ShardArtifact& a : bundle.campaigns) {
      artifact.campaigns.push_back(eval::shard_metrics_row(a));
    }
    for (const eval::FaultShardArtifact& a : bundle.fault_campaigns) {
      artifact.fault_campaigns.push_back(eval::shard_fault_metrics_row(a));
    }
    artifact.process = bundle.metrics;
    try {
      eval::save_metrics_artifact(metrics_path, artifact);
    } catch (const eval::ArtifactWriteError& e) {
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 2;
    }
    std::fprintf(stderr, "wrote metrics artifact to %s\n",
                 metrics_path.c_str());
  }
  return 0;
}

/// `--merge FILE...`: loads one bundle per shard, recombines them and
/// prints the same per-device sections as the single-process campaign run
/// (eval/merge.h render_merged_report — the shared renderer guarantees
/// byte identity).
int run_merge(const std::vector<std::string>& paths,
              const std::string& metrics_path) {
  std::vector<eval::ShardBundle> bundles;
  bundles.reserve(paths.size());
  for (const std::string& path : paths) {
    bundles.push_back(eval::load_shard_bundle(path));
  }
  auto merged = eval::merge_shard_bundles(bundles);
  auto fault_merged = eval::merge_fault_bundles(bundles);
  std::fputs(eval::render_merged_report(merged, fault_merged).c_str(),
             stdout);
  if (!metrics_path.empty()) {
    // Deterministic rows come from the merged results — byte-identical to
    // the single-process run's rows (the merge guarantee extends to steps
    // and baseline telemetry). Timings are the aggregate of whatever the
    // shard bundles embedded.
    eval::MetricsArtifact artifact;
    for (const auto& m : merged) {
      artifact.campaigns.push_back(
          eval::campaign_metrics_row(m.result, m.label, m.engine));
    }
    for (const auto& m : fault_merged) {
      artifact.fault_campaigns.push_back(
          eval::fault_metrics_row(m.result, m.label, m.engine));
    }
    eval::merge_bundle_metrics(bundles, &artifact.process);
    try {
      eval::save_metrics_artifact(metrics_path, artifact);
    } catch (const eval::ArtifactWriteError& e) {
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 2;
    }
    std::fprintf(stderr, "wrote metrics artifact to %s\n",
                 metrics_path.c_str());
  }
  return 0;
}

/// `--serve ENDPOINT`: runs the campaign daemon until SIGINT/SIGTERM. The
/// signals are blocked before the service threads start (they inherit the
/// mask), so shutdown is always the orderly sigwait -> stop() path.
int run_serve(const std::string& target, const char* argv0, unsigned workers,
              std::string scratch_dir, const std::string& metrics_path) {
  serve::ServiceConfig config;
  config.listen_target = target;
  config.dispatch.worker_binary = support::self_executable_path();
  if (config.dispatch.worker_binary.empty()) {
    config.dispatch.worker_binary = argv0;
  }
  if (workers != 0) config.dispatch.workers = workers;
  if (scratch_dir.empty()) {
    char tmpl[] = "/tmp/devil-serve-XXXXXX";
    if (!mkdtemp(tmpl)) {
      std::fprintf(stderr, "mutation_hunt: cannot create scratch directory "
                   "under /tmp: %s\n", std::strerror(errno));
      return 1;
    }
    scratch_dir = tmpl;
  }
  config.dispatch.scratch_dir = scratch_dir;

  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  serve::CampaignService service(config);
  try {
    service.start();
  } catch (const serve::WireError& e) {
    std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "serving campaigns on %s (%u worker(s), scratch %s)\n",
               service.endpoint().c_str(), config.dispatch.workers,
               scratch_dir.c_str());
  int sig = 0;
  sigwait(&signals, &sig);
  std::fprintf(stderr, "caught signal %d, shutting down\n", sig);
  service.stop();
  if (!metrics_path.empty()) {
    // The daemon's own telemetry: the service counters (jobs, cache hits,
    // worker fan-out) ride the standard process-metrics artifact.
    return write_metrics_artifact(metrics_path, eval::MetricsArtifact{},
                                  config.dispatch.workers);
  }
  return 0;
}

/// `--dispatch ENDPOINT`: submits the spec to a `--serve` daemon, prints
/// the served report on stdout and one telemetry line on stderr.
int run_dispatch(const std::string& target, const eval::CampaignSpec& spec,
                 unsigned workers, bool use_cache, unsigned kill_shard) {
  serve::CampaignRequest request;
  request.spec = spec;
  request.workers = workers;
  request.use_cache = use_cache;
  request.kill_shard = kill_shard;

  serve::CampaignResponse response;
  try {
    int fd = serve::connect_endpoint(target);
    serve::write_frame(fd, serve::serialize_campaign_request(request));
    std::string payload;
    bool got = serve::read_frame(fd, 256u << 20, &payload);
    ::close(fd);
    if (!got) {
      std::fprintf(stderr, "mutation_hunt: %s closed the connection without "
                   "a response\n", target.c_str());
      return 1;
    }
    response = serve::parse_campaign_response(payload);
  } catch (const serve::WireError& e) {
    std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
    return 1;
  }
  if (!response.ok) {
    std::fprintf(stderr, "mutation_hunt: dispatch failed: %s\n",
                 response.error.c_str());
    return 1;
  }
  std::fputs(response.report.c_str(), stdout);
  std::fprintf(stderr,
               "dispatch: fingerprint=%s cache_hit=%d workers_spawned=%llu "
               "worker_retries=%llu\n",
               response.fingerprint.c_str(), response.cache_hit ? 1 : 0,
               static_cast<unsigned long long>(response.workers_spawned),
               static_cast<unsigned long long>(response.worker_retries));
  return 0;
}

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: mutation_hunt [MODE] [OPTIONS]\n"
      "\n"
      "Modes (default: run the single-typo scenario):\n"
      "  --threads N          run the Tables 3/4 campaigns on N workers\n"
      "                       (0 = all cores)\n"
      "  --faults             run the fault-injection campaigns instead:\n"
      "                       clean drivers against the deterministic\n"
      "                       hardware-fault scenario matrix\n"
      "  --spec-campaign      run the Table 2 spec-mutation campaign:\n"
      "                       mutate the Devil specs, count compiler\n"
      "                       rejections\n"
      "  --shard I/N --out F  run slice I of N of every selected campaign\n"
      "                       and write a mergeable shard artifact to F\n"
      "                       (fault campaigns when --faults is given)\n"
      "  --merge FILE...      merge one artifact per shard and print the\n"
      "                       single-process campaign report\n"
      "  --serve ENDPOINT     run the campaign daemon: accept campaign\n"
      "                       requests on ENDPOINT (a port binds\n"
      "                       127.0.0.1, \"0\" picks an ephemeral port;\n"
      "                       anything else is a unix socket path), fan\n"
      "                       each job out to shard workers, cache results\n"
      "                       by config fingerprint\n"
      "  --dispatch ENDPOINT  submit the campaign described by the flags\n"
      "                       to a --serve daemon and print the served\n"
      "                       report (byte-identical to the local run)\n"
      "\n"
      "Campaign flags (shared by local runs, shards and --dispatch):\n");
  for (const eval::CampaignFlag& flag : eval::campaign_spec_flags()) {
    std::string head = flag.flag;
    if (flag.value_name) head += std::string(" ") + flag.value_name;
    std::fprintf(to, "  %-20s %s\n", head.c_str(), flag.help);
  }
  std::fprintf(
      to,
      "\n"
      "Other options:\n"
      "  --list-devices       print the campaign device names, one per\n"
      "                       line; after --faults, lists the fault-campaign\n"
      "                       corpus (adds the interrupt-driven devices)\n"
      "  --metrics FILE       write a campaign metrics artifact to FILE:\n"
      "                       deterministic counters (steps, opcode\n"
      "                       profiles, tallies — byte-identical at any\n"
      "                       thread count and across shard merges) plus\n"
      "                       process timings; composes with --faults,\n"
      "                       --shard (also embeds timings in the bundle),\n"
      "                       --merge (aggregates embedded timings) and\n"
      "                       --serve (service counters on shutdown)\n"
      "  --progress           throttled records/s + ETA heartbeat on stderr\n"
      "                       (per-job heartbeats under --serve)\n"
      "  --assert-counters    fail unless dedup + prefix cache engaged\n"
      "                       (and, unless --no-bytecode-patch/--walker,\n"
      "                       bytecode patching both hit and fell back)\n"
      "                       (with --faults: fail unless faults fired and\n"
      "                       CDevil detected strictly more than C)\n"
      "  --workers N          --serve/--dispatch: shard workers per job\n"
      "                       (daemon default 3; 0 = daemon default)\n"
      "  --scratch DIR        --serve: artifact/log directory (default: a\n"
      "                       fresh directory under /tmp)\n"
      "  --no-cache           --dispatch: bypass the daemon's result cache\n"
      "                       for this request (the fresh result still\n"
      "                       populates it)\n"
      "  --kill-shard K       --dispatch: kill shard K's first worker\n"
      "                       attempt to exercise the retry path (the\n"
      "                       report must come back byte-identical)\n"
      "  --help               this message\n");
  return to == stdout ? 0 : 2;
}

[[nodiscard]] int flag_error(const std::string& message) {
  std::fprintf(stderr, "mutation_hunt: %s\n\n", message.c_str());
  return usage(stderr);
}

}  // namespace

int main(int argc, char** argv) {
  g_start_ns = support::monotonic_ns();
  eval::CampaignSpec spec;
  bool campaign_flag_given = false;  // any flag that switches to campaigns
  bool assert_counters = false;
  std::string shard_spec_text;
  std::string out_path;
  std::string metrics_path;
  std::vector<std::string> merge_paths;
  bool merge_given = false;
  std::string serve_target;
  std::string dispatch_target;
  unsigned workers = 0;
  bool workers_given = false;
  std::string scratch_dir;
  bool no_cache = false;
  unsigned kill_shard = 0;
  bool kill_shard_given = false;

  // Strict flag parsing: an unrecognised flag is a hard error with a usage
  // message, never silently ignored — a typoed `--theads 8` must not
  // quietly run the default scenario and exit 0. Campaign flags resolve
  // through the shared table (eval/campaign_spec.h), so the CLI and the
  // service workers parse identically by construction.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) return nullptr;
      (void)flag;
      return argv[++i];
    };
    if (const eval::CampaignFlag* flag = eval::find_campaign_flag(arg)) {
      std::string flag_value;
      if (flag->value_name) {
        const char* v = value(arg.c_str());
        if (!v) return flag_error(arg + " needs a value");
        flag_value = v;
      }
      std::string error = eval::apply_campaign_flag(spec, *flag, flag_value);
      if (!error.empty()) return flag_error(error);
      if (flag->implies_campaign) campaign_flag_given = true;
    } else if (arg == "--progress") {
      support::ProgressMeter::set_enabled(true);
    } else if (arg == "--metrics") {
      const char* v = value("--metrics");
      if (!v) return flag_error("--metrics needs a file path");
      metrics_path = v;
    } else if (arg == "--assert-counters") {
      assert_counters = true;
    } else if (arg == "--shard") {
      const char* v = value("--shard");
      if (!v) return flag_error("--shard needs a value (e.g. 1/3)");
      shard_spec_text = v;
    } else if (arg == "--out") {
      const char* v = value("--out");
      if (!v) return flag_error("--out needs a file path");
      out_path = v;
    } else if (arg == "--merge") {
      merge_given = true;
      // Everything after --merge is an artifact path; a flag-shaped arg
      // here is almost certainly a misplaced option, not a file, and gets
      // the strict-parser treatment (prefix genuine `--foo` files with ./).
      while (i + 1 < argc) {
        const std::string path = argv[++i];
        if (path.rfind("--", 0) == 0) {
          return flag_error("'" + path + "' after --merge: flags must come "
                            "before --merge (artifact files only from here; "
                            "prefix a file literally named like a flag "
                            "with ./)");
        }
        merge_paths.push_back(path);
      }
    } else if (arg == "--serve") {
      const char* v = value("--serve");
      if (!v) return flag_error("--serve needs an endpoint (a port or a "
                                "unix socket path)");
      serve_target = v;
    } else if (arg == "--dispatch") {
      const char* v = value("--dispatch");
      if (!v) return flag_error("--dispatch needs an endpoint (a port, "
                                "host:port or a unix socket path)");
      dispatch_target = v;
    } else if (arg == "--workers") {
      const char* v = value("--workers");
      if (!v) return flag_error("--workers needs a value");
      const std::string text = v;
      const bool digits =
          !text.empty() && text.size() <= 3 &&
          text.find_first_not_of("0123456789") == std::string::npos;
      if (!digits) {
        return flag_error("--workers: '" + text +
                          "' is not a worker count (0-999; 0 = daemon "
                          "default)");
      }
      workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      workers_given = true;
    } else if (arg == "--scratch") {
      const char* v = value("--scratch");
      if (!v) return flag_error("--scratch needs a directory path");
      scratch_dir = v;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--kill-shard") {
      const char* v = value("--kill-shard");
      if (!v) return flag_error("--kill-shard needs a 1-based shard index");
      const std::string text = v;
      const bool digits =
          !text.empty() && text.size() <= 3 &&
          text.find_first_not_of("0123456789") == std::string::npos;
      if (!digits || text == "0") {
        return flag_error("--kill-shard: '" + text +
                          "' is not a 1-based shard index (1-999)");
      }
      kill_shard = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      kill_shard_given = true;
    } else if (arg == "--list-devices") {
      // One name per line, so CI scripts can iterate the corpus registry
      // instead of hardcoding the device list. Mode-aware: after --faults
      // the listing is the fault-campaign corpus, which appends the
      // interrupt-driven devices to the polled mutation corpus.
      eval::CampaignSpec listing = spec;
      listing.device = "all";
      for (const auto& drivers : eval::campaign_spec_corpus(listing)) {
        std::printf("%s\n", drivers.device);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(stdout);
    } else {
      return flag_error("unknown flag '" + arg + "'");
    }
  }

  // `--metrics` turns the telemetry collector on for the rest of the run
  // (instrumentation points are single relaxed atomic loads otherwise).
  if (!metrics_path.empty()) support::Metrics::set_enabled(true);

  if (merge_given) {
    if (campaign_flag_given || assert_counters ||
        !shard_spec_text.empty() || !out_path.empty() ||
        !serve_target.empty() || !dispatch_target.empty() ||
        spec.engine != minic::ExecEngine::kBytecodeVm) {
      return flag_error("--merge takes only artifact files and --metrics "
                        "(the merged report is determined by the artifacts "
                        "themselves)");
    }
    if (merge_paths.empty()) {
      return flag_error("--merge needs at least one artifact file");
    }
    try {
      return run_merge(merge_paths, metrics_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 1;
    }
  }

  if ((no_cache || kill_shard_given) && dispatch_target.empty()) {
    return flag_error(std::string(no_cache ? "--no-cache" : "--kill-shard") +
                      " only makes sense with --dispatch (it is a request "
                      "knob for the campaign daemon)");
  }
  if (workers_given && serve_target.empty() && dispatch_target.empty()) {
    return flag_error("--workers only makes sense with --serve or "
                      "--dispatch (local campaigns take --threads)");
  }
  if (!scratch_dir.empty() && serve_target.empty()) {
    return flag_error("--scratch only makes sense with --serve");
  }

  if (!serve_target.empty()) {
    if (!dispatch_target.empty()) {
      return flag_error("--serve and --dispatch are different roles; pick "
                        "one");
    }
    if (campaign_flag_given || assert_counters ||
        !shard_spec_text.empty() || !out_path.empty() ||
        spec != eval::CampaignSpec{}) {
      return flag_error("--serve runs a daemon: campaign flags belong on "
                        "the --dispatch requests, not on the server");
    }
    return run_serve(serve_target, argv[0], workers, scratch_dir,
                     metrics_path);
  }

  if (!dispatch_target.empty()) {
    if (!shard_spec_text.empty() || !out_path.empty()) {
      return flag_error("--dispatch sends a whole campaign to the daemon; "
                        "sharding is the daemon's job (--shard/--out do "
                        "not compose)");
    }
    if (assert_counters) {
      return flag_error("--assert-counters applies to local campaign runs "
                        "(the daemon's report carries no counter verdict)");
    }
    if (!metrics_path.empty()) {
      return flag_error("--metrics does not compose with --dispatch (the "
                        "daemon runs the campaign; point --metrics at a "
                        "local run or the daemon itself)");
    }
    std::vector<std::string> diags = eval::validate_campaign_spec(spec);
    if (!diags.empty()) {
      for (const std::string& d : diags) {
        std::fprintf(stderr, "mutation_hunt: %s\n", d.c_str());
      }
      return 2;
    }
    return run_dispatch(dispatch_target, spec, workers, !no_cache,
                        kill_shard);
  }

  if (!out_path.empty() && shard_spec_text.empty()) {
    return flag_error("--out only makes sense with --shard I/N");
  }

  const bool campaign_mode =
      campaign_flag_given || assert_counters || !metrics_path.empty();

  // A typoed device name (or a spec the selected kind cannot run) exits 2
  // before any campaigning starts.
  if (campaign_mode || !shard_spec_text.empty()) {
    std::vector<std::string> diags = eval::validate_campaign_spec(spec);
    if (!diags.empty()) {
      for (const std::string& d : diags) {
        std::fprintf(stderr, "mutation_hunt: %s\n", d.c_str());
      }
      return 2;
    }
  }

  if (!shard_spec_text.empty()) {
    if (out_path.empty()) {
      return flag_error("--shard needs --out FILE for the artifact");
    }
    if (assert_counters) {
      return flag_error("--assert-counters applies to full campaign runs, "
                        "not shards (counters are shard-local; merge the "
                        "artifacts instead)");
    }
    if (spec.kind == eval::CampaignKind::kSpec) {
      return flag_error("--spec-campaign has no shard slices; run it whole "
                        "or --dispatch it");
    }
    eval::ShardSpec shard;
    try {
      shard = eval::parse_shard_spec(shard_spec_text);
    } catch (const std::invalid_argument& e) {
      return flag_error(e.what());
    }
    try {
      return run_shard(spec, shard, out_path, metrics_path);
    } catch (const eval::ArtifactWriteError& e) {
      // The artifact could not be written (unwritable path, full disk):
      // exit 2 like the other preflight failures, never a partial file.
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "mutation_hunt: %s\n", e.what());
      return 1;
    }
  }

  if (campaign_mode) {
    if (spec.kind == eval::CampaignKind::kSpec) {
      if (assert_counters) {
        return flag_error("--assert-counters applies to driver and fault "
                          "campaigns, not --spec-campaign");
      }
      int rc = run_spec_campaigns(spec);
      if (!metrics_path.empty()) {
        int metrics_rc = write_metrics_artifact(
            metrics_path, eval::MetricsArtifact{}, spec.threads);
        if (metrics_rc != 0) return metrics_rc;
      }
      return rc;
    }
    eval::MetricsArtifact artifact;
    eval::MetricsArtifact* metrics =
        metrics_path.empty() ? nullptr : &artifact;
    int rc = spec.kind == eval::CampaignKind::kFault
                 ? run_fault_campaigns(spec, assert_counters, metrics)
                 : run_campaigns(spec, assert_counters, metrics);
    if (metrics) {
      int metrics_rc = write_metrics_artifact(metrics_path,
                                              std::move(artifact),
                                              spec.threads);
      if (metrics_rc != 0) return metrics_rc;
    }
    return rc;
  }

  std::printf("Scenario: selecting the drive, the developer writes the\n"
              "IDENTIFY command byte instead of the drive-select value.\n\n");

  // --- original C driver: ATA_LBA -> WIN_IDENTIFY at the select site -----
  std::string c_driver = replace_once(
      corpus::c_ide_driver(), "outb(ATA_LBA, IDE_SELECT);",
      "outb(WIN_IDENTIFY, IDE_SELECT);");
  report("[1] C driver, `outb(WIN_IDENTIFY, IDE_SELECT)`:", "ide_c.c",
         c_driver, spec.engine);

  // --- Devil driver, debug stubs: set_Drive(WIN_IDENTIFY) ----------------
  auto debug = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                   devil::CodegenMode::kDebug);
  std::string d_driver = replace_once(corpus::cdevil_ide_driver(),
                                      "set_Drive(MASTER)",
                                      "set_Drive(WIN_IDENTIFY)");
  report("[2] Devil driver (debug stubs), `set_Drive(WIN_IDENTIFY)`:",
         "ide.dil", debug.stubs + "\n" + d_driver, spec.engine);

  // --- Devil driver, production stubs: same typo -------------------------
  auto prod = devil::compile_spec("ide.dil", corpus::ide_spec(),
                                  devil::CodegenMode::kProduction);
  report("[3] Devil driver (production stubs), same typo:", "ide.dil",
         prod.stubs + "\n" + d_driver, spec.engine);

  // --- a same-type confusion that types cannot catch ---------------------
  std::string swap = replace_once(corpus::cdevil_ide_driver(),
                                  "dil_eq(get_Busy(), BUSY)",
                                  "dil_eq(get_Seek(), BUSY)");
  report("[4] Devil driver (debug), wrong getter inside dil_eq:", "ide.dil",
         debug.stubs + "\n" + swap, spec.engine);

  std::printf("Summary: Devil turns silent C-level typos into compile-time\n"
              "type errors (debug stubs) or precise run-time assertions; the\n"
              "same code built with production stubs behaves like C again.\n");
  return 0;
}
