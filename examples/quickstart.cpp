// Quickstart: the full Devil workflow on the paper's running example.
//
//   1. compile the Logitech busmouse specification (Fig. 3);
//   2. generate debug stubs;
//   3. build a driver against the stubs (CDevil style);
//   4. run it in the MiniC interpreter against the simulated mouse.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "corpus/specs.h"
#include "devil/compiler.h"
#include "hw/busmouse.h"
#include "hw/io_bus.h"
#include "minic/program.h"

int main() {
  // 1. Compile the specification. The Devil compiler verifies intra- and
  //    inter-layer consistency before anything is generated.
  auto spec = devil::compile_spec("busmouse.dil", corpus::busmouse_spec(),
                                  devil::CodegenMode::kDebug);
  if (!spec.ok()) {
    std::fprintf(stderr, "specification rejected:\n%s",
                 spec.diags.render().c_str());
    return 1;
  }
  std::printf("specification OK:\n%s\n",
              devil::describe_device(*spec.info).c_str());

  // 2+3. The driver is ordinary C-style glue calling the generated stubs —
  //      no raw ports, no shifts, no magic numbers.
  const char* driver = R"(
int read_mouse() {
  int dx;
  int dy;
  int buttons;
  devil_init(0x23c);
  set_config(CONFIGURATION);
  set_interrupt(DISABLE);
  dx = dil_val(get_dx());
  dy = dil_val(get_dy());
  buttons = dil_val(get_buttons());
  printk("mouse state read");
  return (buttons << 16) | ((dy & 0xff) << 8) | (dx & 0xff);
}
)";
  std::string unit = spec.stubs + "\n" + driver;

  // 4. Wire the simulated mouse to an I/O bus and run.
  hw::IoBus bus;
  auto mouse = std::make_shared<hw::Busmouse>();
  mouse->set_motion(/*dx=*/5, /*dy=*/-3, /*buttons=*/0b010);
  bus.map(0x23c, 4, mouse);

  auto out = minic::compile_and_run("busmouse.dil", unit, "read_mouse", bus);
  if (out.fault != minic::FaultKind::kNone) {
    std::fprintf(stderr, "driver fault: %s\n", out.fault_message.c_str());
    return 1;
  }
  int state = static_cast<int>(out.return_value);
  std::printf("driver returned: dx=%d dy=%d buttons=%#x\n",
              static_cast<int8_t>(state & 0xff),
              static_cast<int8_t>((state >> 8) & 0xff), (state >> 16) & 7);
  std::printf("(%llu interpreter steps, %zu log line(s))\n",
              static_cast<unsigned long long>(out.steps_used),
              out.log.size());
  return 0;
}
